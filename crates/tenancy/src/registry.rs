//! The tenant registry: N warm engines behind one listener, managed
//! like FaaS containers.
//!
//! Each tenant is declared up front (name, warm-set size, quota,
//! snapshot path, and a *factory* that can materialize its engine) but
//! its repository is built lazily, on the first request that routes to
//! it — a **cold start**, counted and traced, hydrating classifier-free
//! from the tenant's snapshot when one is readable (the PR 9
//! machinery). Warm tenants stay resident under a global memory budget
//! tracked from the engines' store-bytes accounting; when the budget is
//! exceeded or a tenant sits idle past its keepalive, the LRU-idle
//! tenant is **evicted** — after writing a final at-evict snapshot, so
//! re-admission is again classifier-free and bit-identical.
//!
//! ```text
//!            ensure_warm()            evict()
//!   Cold ──► Warming ──► Warm ──────► Evicted
//!                          ▲             │ ensure_warm()
//!                          └── Warming ◄─┘   (hydrates <name>.shws)
//! ```
//!
//! Request admission is quota-gated per tenant ([`TenantRegistry::
//! try_admit`] / [`TenantRegistry::release`] bracket every in-flight
//! explain), reusing the serve layer's 429 taxonomy. All transitions
//! are counted under `tenancy.*`, with per-tenant `tenant.<name>.*`
//! breakdowns when (and only when) the cluster is multi-tenant.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use shahin::obs::{names, register_standard};
use shahin::{MetricsRegistry, SnapshotError, WarmEngine, WarmRequest};
use shahin_model::Classifier;

use crate::shard::ShardMap;

/// Lifecycle phase of one tenant's repository.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Lifecycle {
    /// Declared, never materialized.
    Cold = 0,
    /// A cold start is materializing the engine right now.
    Warming = 1,
    /// Resident and serving.
    Warm = 2,
    /// Retired by the lifecycle controller; the next request cold-starts
    /// again (hydrating from the at-evict snapshot when present).
    Evicted = 3,
}

impl Lifecycle {
    /// Wire/metric name of the phase.
    pub fn name(self) -> &'static str {
        match self {
            Lifecycle::Cold => "cold",
            Lifecycle::Warming => "warming",
            Lifecycle::Warm => "warm",
            Lifecycle::Evicted => "evicted",
        }
    }

    fn from_u8(v: u8) -> Lifecycle {
        match v {
            1 => Lifecycle::Warming,
            2 => Lifecycle::Warm,
            3 => Lifecycle::Evicted,
            _ => Lifecycle::Cold,
        }
    }
}

/// A materialized tenant: the engine plus its consistent-hash routing
/// table, built once per cold start so the per-request path is two
/// array reads.
pub struct WarmSlot<C: Classifier> {
    pub engine: Arc<WarmEngine<C>>,
    map: ShardMap,
    /// Worker shard per warm row, precomputed from the rows' frozen-
    /// itemset signatures.
    row_shards: Vec<u32>,
}

impl<C: Classifier> WarmSlot<C> {
    fn build(engine: Arc<WarmEngine<C>>) -> WarmSlot<C> {
        let map = ShardMap::new(engine.n_workers());
        let row_shards = engine
            .row_signatures()
            .into_iter()
            .map(|sig| map.shard_for(sig) as u32)
            .collect();
        WarmSlot {
            engine,
            map,
            row_shards,
        }
    }

    /// Workers (= shards) this tenant's requests spread over.
    pub fn n_workers(&self) -> usize {
        self.map.n_shards()
    }

    /// The worker shard warm row `row` routes to.
    pub fn shard_of_row(&self, row: usize) -> usize {
        self.row_shards[row] as usize
    }

    /// The request→worker assignment for one micro-batch, ready for
    /// [`WarmEngine::explain_assigned`].
    pub fn assign(&self, requests: &[WarmRequest]) -> Vec<usize> {
        requests.iter().map(|r| self.shard_of_row(r.row)).collect()
    }
}

/// Materializes one tenant's engine, optionally from snapshot bytes —
/// the signature of [`WarmEngine::prime_warm_or_cold`] with everything
/// but the bytes captured. The registry never holds datasets or
/// classifiers itself; tenants cost a closure until their first request.
pub type EngineFactory<C> =
    Box<dyn Fn(Option<&[u8]>) -> (WarmEngine<C>, Option<SnapshotError>) + Send + Sync>;

/// One tenant's declaration, handed to [`TenantRegistry::new`].
pub struct TenantConfig<C: Classifier> {
    /// Routing key (the protocol's `tenant` field) and metric label.
    pub name: String,
    /// Warm-set size, known without materializing — row-range admission
    /// checks never wake a cold tenant.
    pub n_rows: usize,
    /// Max in-flight explain requests (`None` = unlimited, `Some(0)` =
    /// reject everything).
    pub quota: Option<usize>,
    /// `<snapshot_dir>/<name>.shws`: hydration source at cold start,
    /// persistence target at evict and on snapshot sweeps.
    pub snapshot_path: Option<PathBuf>,
    /// Explicit snapshot for the *first* cold start only (the manifest's
    /// `warm_from`), overriding `snapshot_path` as hydration source.
    pub warm_from: Option<PathBuf>,
    pub factory: EngineFactory<C>,
}

/// What one cold start did — surfaced into the request trace and logs.
#[derive(Debug)]
pub struct ColdStart {
    /// Served classifier-free from a snapshot.
    pub hydrated: bool,
    /// Materialization wall time.
    pub wall: Duration,
    /// A snapshot was offered but rejected (the engine cold-primed).
    pub rejection: Option<SnapshotError>,
}

/// Why [`TenantRegistry::evict`] declined.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictRefused {
    /// The tenant is not in the `Warm` phase.
    NotWarm,
    /// Requests admitted against this tenant are still in flight.
    Inflight,
    /// The tenant has no factory to re-materialize from (the
    /// single-tenant wrapper), so retiring it would be permanent.
    NotRebuildable,
}

/// Eviction policy for the whole cluster.
#[derive(Clone, Copy, Debug, Default)]
pub struct LifecyclePolicy {
    /// Global budget across every warm tenant's store bytes; exceeded →
    /// LRU-idle tenants are evicted until back under.
    pub memory_budget_bytes: Option<usize>,
    /// Keepalive: a warm tenant idle longer than this is evicted.
    pub idle_evict: Option<Duration>,
}

struct TenantCell<C: Classifier> {
    name: Arc<str>,
    n_rows: usize,
    quota: Option<usize>,
    snapshot_path: Option<PathBuf>,
    factory: Option<EngineFactory<C>>,
    /// Lock-free phase mirror of `state`, so stats/enforce never block
    /// behind a multi-second materialization.
    phase: AtomicU8,
    state: Mutex<TenantState<C>>,
    inflight: AtomicU64,
    last_used: Mutex<Instant>,
}

struct TenantState<C: Classifier> {
    slot: Option<Arc<WarmSlot<C>>>,
    /// Consumed by the first cold start.
    warm_from: Option<PathBuf>,
}

/// One tenant's row in the admin `stats`/`ping` frames.
#[derive(Clone, Debug)]
pub struct TenantStatus {
    pub name: Arc<str>,
    pub state: &'static str,
    pub entries: u64,
    pub bytes: u64,
    pub inflight: u64,
}

/// The cluster's tenant table (see the module docs).
pub struct TenantRegistry<C: Classifier> {
    tenants: Vec<TenantCell<C>>,
    default: usize,
    multi: bool,
    policy: LifecyclePolicy,
    obs: MetricsRegistry,
}

impl<C: Classifier> TenantRegistry<C> {
    /// Builds the registry over `configs`. Per-tenant metric names are
    /// pre-registered when the cluster is multi-tenant, so metric dumps
    /// carry zeroes for tenants that never cold-started.
    pub fn new(
        configs: Vec<TenantConfig<C>>,
        default: usize,
        policy: LifecyclePolicy,
        obs: &MetricsRegistry,
    ) -> TenantRegistry<C> {
        assert!(!configs.is_empty(), "a cluster needs at least one tenant");
        assert!(default < configs.len(), "default tenant out of range");
        register_standard(obs);
        let multi = configs.len() > 1;
        let tenants: Vec<TenantCell<C>> = configs
            .into_iter()
            .map(|c| TenantCell {
                name: Arc::from(c.name.as_str()),
                n_rows: c.n_rows,
                quota: c.quota,
                snapshot_path: c.snapshot_path,
                factory: Some(c.factory),
                phase: AtomicU8::new(Lifecycle::Cold as u8),
                state: Mutex::new(TenantState {
                    slot: None,
                    warm_from: c.warm_from,
                }),
                inflight: AtomicU64::new(0),
                last_used: Mutex::new(Instant::now()),
            })
            .collect();
        let reg = TenantRegistry {
            tenants,
            default,
            multi,
            policy,
            obs: obs.clone(),
        };
        reg.obs
            .gauge(names::TENANCY_TENANTS)
            .set(reg.tenants.len() as u64);
        reg.obs
            .gauge(names::TENANCY_BUDGET_BYTES)
            .set(policy.memory_budget_bytes.unwrap_or(0) as u64);
        if multi {
            for cell in &reg.tenants {
                for kind in [
                    "requests",
                    "cold_starts",
                    "hydrations",
                    "evictions",
                    "quota_rejections",
                    "snapshots_taken",
                    "loads_ok",
                    "load_rejected",
                ] {
                    reg.obs.counter(&names::tenant_metric(&cell.name, kind));
                }
                for kind in ["warm_entries", "warm_bytes", "state"] {
                    reg.obs.gauge(&names::tenant_metric(&cell.name, kind));
                }
            }
        }
        reg
    }

    /// Wraps an already-warm engine as a one-tenant cluster — how the
    /// single-tenant `Server::start` path rides the same machinery. No
    /// factory, so the lifecycle controller never retires it; tenant
    /// labels stay off every metric, record, and trace.
    pub fn single(engine: Arc<WarmEngine<C>>, snapshot_path: Option<PathBuf>) -> TenantRegistry<C> {
        let obs = engine.obs().clone();
        let n_rows = engine.n_rows();
        let slot = Arc::new(WarmSlot::build(engine));
        let cell = TenantCell {
            name: Arc::from("default"),
            n_rows,
            quota: None,
            snapshot_path,
            factory: None,
            phase: AtomicU8::new(Lifecycle::Warm as u8),
            state: Mutex::new(TenantState {
                slot: Some(slot),
                warm_from: None,
            }),
            inflight: AtomicU64::new(0),
            last_used: Mutex::new(Instant::now()),
        };
        obs.gauge(names::TENANCY_TENANTS).set(1);
        TenantRegistry {
            tenants: vec![cell],
            default: 0,
            multi: false,
            policy: LifecyclePolicy::default(),
            obs,
        }
    }

    /// More than one tenant — tags go on metrics, records, and traces.
    pub fn multi(&self) -> bool {
        self.multi
    }

    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    pub fn default_idx(&self) -> usize {
        self.default
    }

    pub fn obs(&self) -> &MetricsRegistry {
        &self.obs
    }

    pub fn name(&self, idx: usize) -> &Arc<str> {
        &self.tenants[idx].name
    }

    /// Warm-set size, available without materializing the tenant.
    pub fn n_rows(&self, idx: usize) -> usize {
        self.tenants[idx].n_rows
    }

    pub fn lifecycle(&self, idx: usize) -> Lifecycle {
        Lifecycle::from_u8(self.tenants[idx].phase.load(Ordering::Acquire))
    }

    pub fn inflight(&self, idx: usize) -> u64 {
        self.tenants[idx].inflight.load(Ordering::Relaxed)
    }

    /// The tenant's in-flight admission quota (`None` = unbounded).
    pub fn quota(&self, idx: usize) -> Option<usize> {
        self.tenants[idx].quota
    }

    /// Routes a request's `tenant` field: absent → the default tenant,
    /// unknown → `None` (the serve layer's typed 404), counted under
    /// `tenancy.unknown_tenant`.
    pub fn resolve(&self, tenant: Option<&str>) -> Option<usize> {
        match tenant {
            None => Some(self.default),
            Some(name) => match self.tenants.iter().position(|c| &*c.name == name) {
                Some(idx) => Some(idx),
                None => {
                    self.obs.counter(names::TENANCY_UNKNOWN_TENANT).inc();
                    None
                }
            },
        }
    }

    /// Admission-quota gate, bracketing every in-flight request with
    /// [`TenantRegistry::release`]. Returns `false` — counted under
    /// `tenancy.quota_rejections` — when the tenant is at quota; the
    /// serve layer answers 429.
    pub fn try_admit(&self, idx: usize) -> bool {
        let cell = &self.tenants[idx];
        *cell.last_used.lock() = Instant::now();
        if let Some(quota) = cell.quota {
            // CAS loop: never overshoot the quota under concurrent
            // admission from many reader threads.
            let mut cur = cell.inflight.load(Ordering::Relaxed);
            loop {
                if cur >= quota as u64 {
                    self.obs.counter(names::TENANCY_QUOTA_REJECTIONS).inc();
                    if self.multi {
                        self.obs
                            .counter(&names::tenant_metric(&cell.name, "quota_rejections"))
                            .inc();
                    }
                    return false;
                }
                match cell.inflight.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        } else {
            cell.inflight.fetch_add(1, Ordering::Relaxed);
        }
        if self.multi {
            self.obs
                .counter(&names::tenant_metric(&cell.name, "requests"))
                .inc();
        }
        true
    }

    /// Releases one admitted request (response written or dropped).
    pub fn release(&self, idx: usize) {
        let cell = &self.tenants[idx];
        let prev = cell.inflight.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "release without admit");
        *cell.last_used.lock() = Instant::now();
    }

    /// The tenant's slot if it is warm right now (no materialization).
    pub fn slot(&self, idx: usize) -> Option<Arc<WarmSlot<C>>> {
        self.tenants[idx].state.lock().slot.clone()
    }

    /// The FaaS entry point: returns the tenant's warm slot,
    /// materializing it on first use. A cold start reads the hydration
    /// source (the first-start `warm_from` override, else the tenant's
    /// snapshot if one is on disk), runs the factory — which hydrates
    /// classifier-free on a valid snapshot and cold-primes otherwise —
    /// and publishes the slot. Counted under `tenancy.cold_starts` /
    /// `tenancy.hydrations` with wall time in
    /// `tenancy.cold_start_latency`; the `Some(ColdStart)` return is the
    /// batcher's cue to add a `coldstart` span to request traces.
    pub fn ensure_warm(&self, idx: usize) -> (Arc<WarmSlot<C>>, Option<ColdStart>) {
        let cell = &self.tenants[idx];
        let mut state = cell.state.lock();
        if let Some(slot) = &state.slot {
            return (Arc::clone(slot), None);
        }
        let t0 = Instant::now();
        cell.phase
            .store(Lifecycle::Warming as u8, Ordering::Release);
        let source = state.warm_from.take().or_else(|| {
            cell.snapshot_path
                .as_ref()
                .filter(|p| p.exists())
                .cloned()
        });
        let bytes = source.as_ref().and_then(|p| std::fs::read(p).ok());
        let factory = cell
            .factory
            .as_ref()
            .expect("cold tenants always carry a factory");
        let (mut engine, rejection) = factory(bytes.as_deref());
        if self.multi {
            engine.set_tenant(&cell.name);
        }
        let hydrated = bytes.is_some() && rejection.is_none();
        let slot = Arc::new(WarmSlot::build(Arc::new(engine)));
        state.slot = Some(Arc::clone(&slot));
        cell.phase.store(Lifecycle::Warm as u8, Ordering::Release);
        drop(state);

        let wall = t0.elapsed();
        self.obs.counter(names::TENANCY_COLD_STARTS).inc();
        self.obs
            .histogram(names::TENANCY_COLD_START_LATENCY)
            .record_ns(u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX));
        if hydrated {
            self.obs.counter(names::TENANCY_HYDRATIONS).inc();
        }
        if self.multi {
            self.obs
                .counter(&names::tenant_metric(&cell.name, "cold_starts"))
                .inc();
            if hydrated {
                self.obs
                    .counter(&names::tenant_metric(&cell.name, "hydrations"))
                    .inc();
            }
            if bytes.is_some() {
                let kind = if rejection.is_none() {
                    "loads_ok"
                } else {
                    "load_rejected"
                };
                self.obs
                    .counter(&names::tenant_metric(&cell.name, kind))
                    .inc();
            }
        }
        match (&rejection, hydrated) {
            (Some(err), _) => eprintln!(
                "tenancy: cold-started tenant '{}' in {:.1} ms (snapshot rejected: {err})",
                cell.name,
                wall.as_secs_f64() * 1e3
            ),
            (None, true) => eprintln!(
                "tenancy: cold-started tenant '{}' in {:.1} ms (hydrated, classifier-free)",
                cell.name,
                wall.as_secs_f64() * 1e3
            ),
            (None, false) => eprintln!(
                "tenancy: cold-started tenant '{}' in {:.1} ms (primed cold)",
                cell.name,
                wall.as_secs_f64() * 1e3
            ),
        }
        (
            slot,
            Some(ColdStart {
                hydrated,
                wall,
                rejection,
            }),
        )
    }

    /// Retires a warm tenant: writes the at-evict snapshot (when the
    /// tenant has a snapshot path), drops the engine, and marks the
    /// tenant `Evicted`. Refuses — rather than corrupting a serving
    /// tenant — when requests are in flight, the tenant is not warm, or
    /// it cannot be re-materialized.
    pub fn evict(&self, idx: usize) -> Result<(), EvictRefused> {
        let cell = &self.tenants[idx];
        if cell.factory.is_none() {
            return Err(EvictRefused::NotRebuildable);
        }
        let mut state = cell.state.lock();
        if state.slot.is_none() {
            return Err(EvictRefused::NotWarm);
        }
        // Checked under the state lock: admission bumps inflight before
        // the batcher can touch the slot, so a zero here means no
        // request can be between admit and response.
        if cell.inflight.load(Ordering::Acquire) > 0 {
            return Err(EvictRefused::Inflight);
        }
        let slot = state.slot.take().expect("checked above");
        let mut snapshot_note = "no snapshot path";
        if let Some(path) = &cell.snapshot_path {
            match slot.engine.write_snapshot(path) {
                Ok(bytes) => {
                    self.obs.counter(names::PERSIST_SNAPSHOTS_TAKEN).inc();
                    self.obs.gauge(names::PERSIST_SNAPSHOT_BYTES).set(bytes);
                    if self.multi {
                        self.obs
                            .counter(&names::tenant_metric(&cell.name, "snapshots_taken"))
                            .inc();
                    }
                    snapshot_note = "at-evict snapshot written";
                }
                Err(_) => {
                    self.obs.counter(names::PERSIST_SNAPSHOTS_FAILED).inc();
                    snapshot_note = "at-evict snapshot FAILED";
                }
            }
        }
        cell.phase
            .store(Lifecycle::Evicted as u8, Ordering::Release);
        drop(state);
        self.obs.counter(names::TENANCY_EVICTIONS).inc();
        if self.multi {
            self.obs
                .counter(&names::tenant_metric(&cell.name, "evictions"))
                .inc();
        }
        eprintln!("tenancy: evicted tenant '{}' ({snapshot_note})", cell.name);
        Ok(())
    }

    /// One lifecycle sweep, run from the serve monitor tick: evict warm
    /// tenants idle past the keepalive, then evict LRU-idle tenants
    /// while the cluster is over its memory budget, then refresh the
    /// `tenancy.*` (and per-tenant) gauges. Returns `(name, reason)` per
    /// eviction for the caller's log.
    pub fn enforce(&self) -> Vec<(Arc<str>, &'static str)> {
        let mut evicted = Vec::new();
        if let Some(idle) = self.policy.idle_evict {
            for idx in 0..self.tenants.len() {
                let cell = &self.tenants[idx];
                if self.lifecycle(idx) == Lifecycle::Warm
                    && cell.inflight.load(Ordering::Relaxed) == 0
                    && cell.last_used.lock().elapsed() >= idle
                    && self.evict(idx).is_ok()
                {
                    evicted.push((Arc::clone(&cell.name), "idle"));
                }
            }
        }
        if let Some(budget) = self.policy.memory_budget_bytes {
            loop {
                let (_, total) = self.warm_totals();
                if total <= budget as u64 {
                    break;
                }
                // LRU victim: the least-recently-used evictable tenant.
                let victim = (0..self.tenants.len())
                    .filter(|&i| {
                        self.lifecycle(i) == Lifecycle::Warm
                            && self.tenants[i].inflight.load(Ordering::Relaxed) == 0
                            && self.tenants[i].factory.is_some()
                    })
                    .min_by_key(|&i| *self.tenants[i].last_used.lock());
                let Some(victim) = victim else {
                    break; // Everything warm is busy; retry next tick.
                };
                if self.evict(victim).is_err() {
                    break;
                }
                evicted.push((Arc::clone(&self.tenants[victim].name), "budget"));
            }
        }
        self.sample_gauges();
        evicted
    }

    /// Aggregate `(entries, bytes)` across every warm tenant — what the
    /// monitor publishes as `serve.warm_entries`/`serve.warm_bytes`, now
    /// a cluster-wide sum.
    pub fn warm_totals(&self) -> (u64, u64) {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for idx in 0..self.tenants.len() {
            if let Some(slot) = self.slot(idx) {
                entries += slot.engine.store_entries() as u64;
                bytes += slot.engine.store_bytes() as u64;
            }
        }
        (entries, bytes)
    }

    /// Refreshes `tenancy.warm_tenants`/`tenancy.warm_bytes` and the
    /// per-tenant gauges (multi-tenant only).
    pub fn sample_gauges(&self) {
        let mut warm_tenants = 0u64;
        let mut warm_bytes = 0u64;
        for idx in 0..self.tenants.len() {
            let cell = &self.tenants[idx];
            let slot = self.slot(idx);
            if let Some(slot) = &slot {
                warm_tenants += 1;
                warm_bytes += slot.engine.store_bytes() as u64;
            }
            if self.multi {
                let (entries, bytes) = slot
                    .map(|s| (s.engine.store_entries() as u64, s.engine.store_bytes() as u64))
                    .unwrap_or((0, 0));
                self.obs
                    .gauge(&names::tenant_metric(&cell.name, "warm_entries"))
                    .set(entries);
                self.obs
                    .gauge(&names::tenant_metric(&cell.name, "warm_bytes"))
                    .set(bytes);
                self.obs
                    .gauge(&names::tenant_metric(&cell.name, "state"))
                    .set(u64::from(cell.phase.load(Ordering::Acquire)));
            }
        }
        self.obs.gauge(names::TENANCY_WARM_TENANTS).set(warm_tenants);
        self.obs.gauge(names::TENANCY_WARM_BYTES).set(warm_bytes);
    }

    /// Sweeps a snapshot of every warm tenant with a snapshot path —
    /// the periodic / admin-frame / SIGUSR1 / at-drain persistence path,
    /// still funneled through the single monitor writer. Returns
    /// `(taken, failed)`.
    pub fn write_snapshots(&self) -> (usize, usize) {
        let mut taken = 0;
        let mut failed = 0;
        for idx in 0..self.tenants.len() {
            let cell = &self.tenants[idx];
            let Some(path) = &cell.snapshot_path else {
                continue;
            };
            let Some(slot) = self.slot(idx) else {
                continue;
            };
            match slot.engine.write_snapshot(path) {
                Ok(bytes) => {
                    taken += 1;
                    self.obs.counter(names::PERSIST_SNAPSHOTS_TAKEN).inc();
                    self.obs.gauge(names::PERSIST_SNAPSHOT_BYTES).set(bytes);
                    if self.multi {
                        self.obs
                            .counter(&names::tenant_metric(&cell.name, "snapshots_taken"))
                            .inc();
                    }
                }
                Err(_) => {
                    failed += 1;
                    self.obs.counter(names::PERSIST_SNAPSHOTS_FAILED).inc();
                }
            }
        }
        (taken, failed)
    }

    /// Any tenant carries a snapshot path (the monitor's "is persistence
    /// configured at all" check).
    pub fn persists(&self) -> bool {
        self.tenants.iter().any(|c| c.snapshot_path.is_some())
    }

    /// Per-tenant rows for the admin `stats`/`ping` frames.
    pub fn stats(&self) -> Vec<TenantStatus> {
        (0..self.tenants.len())
            .map(|idx| {
                let cell = &self.tenants[idx];
                let (entries, bytes) = self
                    .slot(idx)
                    .map(|s| (s.engine.store_entries() as u64, s.engine.store_bytes() as u64))
                    .unwrap_or((0, 0));
                TenantStatus {
                    name: Arc::clone(&cell.name),
                    state: self.lifecycle(idx).name(),
                    entries,
                    bytes,
                    inflight: cell.inflight.load(Ordering::Relaxed),
                }
            })
            .collect()
    }
}
