//! Consistent-hash shard map: frozen-itemset signatures → workers.
//!
//! Each tenant's warm repository is logically sharded across the worker
//! pool so that rows matching the same frequent-itemset family — the
//! rows that share materialized perturbations — are explained by the
//! same worker, keeping one store neighborhood hot in one worker's
//! cache. The map is a classic consistent-hash ring: every shard owns
//! `vnodes` pseudo-random points on the `u64` circle, and a signature
//! is routed to the shard owning the first point at or after it.
//! Consistency is what makes the pool elastically resizable: growing
//! the ring from `n` to `n+1` shards remaps only ~`1/(n+1)` of the
//! signatures, so most rows keep their worker (and its warm cache)
//! across a resize.
//!
//! Routing never affects results: [`shahin::WarmEngine::explain_assigned`]
//! is bit-identical under any assignment, which
//! `tests/shard_identity.rs` proptests.

/// One SplitMix64 step — the same mixer the core crate uses for seeds
/// and snapshot fingerprints, so ring placement is stable across
/// platforms and builds.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Default virtual nodes per shard; enough for <5% load imbalance at
/// typical worker counts while keeping the ring a few KB.
pub const DEFAULT_VNODES: usize = 64;

/// A consistent-hash ring routing row signatures to worker shards.
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// Ring points, sorted ascending: `(point, shard)`.
    points: Vec<(u64, u32)>,
    n_shards: usize,
}

impl ShardMap {
    /// A ring of `n_shards` shards with [`DEFAULT_VNODES`] points each.
    pub fn new(n_shards: usize) -> ShardMap {
        ShardMap::with_vnodes(n_shards, DEFAULT_VNODES)
    }

    /// A ring with an explicit virtual-node count (≥1 enforced).
    pub fn with_vnodes(n_shards: usize, vnodes: usize) -> ShardMap {
        let n_shards = n_shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(n_shards * vnodes);
        for shard in 0..n_shards {
            for vnode in 0..vnodes {
                let point = splitmix(((shard as u64) << 32) | vnode as u64);
                points.push((point, shard as u32));
            }
        }
        // Ties (astronomically unlikely) resolve to the lower shard id,
        // deterministically.
        points.sort_unstable();
        ShardMap { points, n_shards }
    }

    /// Shards on the ring.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning `signature`: the first ring point at or after
    /// it, wrapping at the top of the circle.
    pub fn shard_for(&self, signature: u64) -> usize {
        let at = self.points.partition_point(|&(p, _)| p < signature);
        let (_, shard) = self.points[at % self.points.len()];
        shard as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let map = ShardMap::new(4);
        for sig in (0..10_000u64).map(splitmix) {
            let s = map.shard_for(sig);
            assert!(s < 4);
            assert_eq!(s, ShardMap::new(4).shard_for(sig), "unstable routing");
        }
    }

    #[test]
    fn all_shards_receive_traffic_and_load_is_roughly_balanced() {
        let n = 8;
        let map = ShardMap::new(n);
        let mut counts = vec![0usize; n];
        let total = 20_000;
        for i in 0..total {
            counts[map.shard_for(splitmix(i as u64))] += 1;
        }
        let ideal = total / n;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {shard} starved");
            assert!(
                c < ideal * 2,
                "shard {shard} holds {c} of {total} (ideal {ideal})"
            );
        }
    }

    #[test]
    fn growing_the_ring_moves_a_bounded_fraction_of_keys() {
        let before = ShardMap::new(8);
        let after = ShardMap::new(9);
        let total = 20_000;
        let moved = (0..total)
            .map(|i| splitmix(i as u64))
            .filter(|&sig| before.shard_for(sig) != after.shard_for(sig))
            .count();
        // Ideal is total/9 ≈ 11%; allow generous slack for vnode variance
        // but far below the ~89% a modulo hash would move.
        let frac = moved as f64 / total as f64;
        assert!(frac < 0.30, "consistency broken: {frac:.2} of keys moved");
        assert!(moved > 0, "a new shard must take some keys");
    }

    #[test]
    fn degenerate_rings_are_total() {
        let one = ShardMap::new(1);
        assert_eq!(one.shard_for(0), 0);
        assert_eq!(one.shard_for(u64::MAX), 0);
        let zero = ShardMap::new(0); // clamped to 1
        assert_eq!(zero.n_shards(), 1);
        assert_eq!(zero.shard_for(42), 0);
    }
}
