//! # shahin-tenancy — multi-tenant serve cluster
//!
//! One `shahin-serve` listener, N tenants: each tenant is a (dataset,
//! model, explainer, [`shahin::BatchConfig`]) tuple with its own warm
//! perturbation repository, declared in a JSON [`manifest`] and managed
//! FaaS-style by the [`registry`] — materialized lazily on first
//! request (a counted, traced *cold start*, hydrating classifier-free
//! from a per-tenant snapshot when one is readable), kept warm under a
//! global memory budget, and evicted LRU-idle with a final at-evict
//! snapshot so re-admission never touches the classifier.
//!
//! Within a tenant, requests are routed to workers by a consistent-hash
//! [`shard::ShardMap`] over each warm row's frozen-itemset signature
//! ([`shahin::WarmEngine::row_signature`]), so rows that share
//! materialized perturbations land on the same worker and its cache.
//! Sharding is pure routing: engines are bit-identical under any
//! request→worker assignment (per-tuple seeding depends only on the
//! global row index), which `tests/shard_identity.rs` proptests.
//!
//! The crate is deliberately serve-agnostic — it knows engines,
//! snapshots, and metrics, not sockets — so the lifecycle is unit- and
//! property-testable without a listener. `shahin-serve` layers the wire
//! protocol (tenant field, typed 404/429 frames, per-tenant stats) on
//! top.

pub mod manifest;
pub mod registry;
pub mod shard;

pub use manifest::{TenantManifest, TenantSpec};
pub use registry::{
    ColdStart, EngineFactory, EvictRefused, Lifecycle, LifecyclePolicy, TenantConfig,
    TenantRegistry, TenantStatus, WarmSlot,
};
pub use shard::{ShardMap, DEFAULT_VNODES};
