//! The cluster manifest: N tenant specs plus lifecycle policy, parsed
//! from the JSON file `shahin-cli serve --manifest` points at.
//!
//! The manifest is deliberately declarative — it names datasets and
//! knobs, never code — and validation is fail-fast: every structural
//! problem (duplicate tenant, unknown explainer, bad default) is
//! reported at startup, before a socket is bound. Parsing uses the
//! workspace's zero-dependency [`shahin_obs::Json`] reader.
//!
//! ```json
//! {
//!   "default": "acme",
//!   "snapshot_dir": "/var/lib/shahin/snapshots",
//!   "memory_budget_bytes": 268435456,
//!   "idle_evict_ms": 600000,
//!   "tenants": [
//!     {"name": "acme", "csv": "acme.csv", "label": "outcome",
//!      "explainer": "lime", "seed": 42, "warm_rows": 200},
//!     {"name": "globex", "csv": "globex.csv", "label": "churn",
//!      "explainer": "shap", "quota": 64, "threads": 4},
//!     {"name": "initech", "csv": "initech.csv", "label": "risk",
//!      "explainer": "anchor", "warm_from": "seeded/initech.shws"}
//!   ]
//! }
//! ```

use std::path::{Path, PathBuf};

use shahin_obs::Json;

/// One tenant's declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Routing key and snapshot/metric label. Restricted to
    /// `[A-Za-z0-9_-]` so it is safe in file names and metric names.
    pub name: String,
    /// Dataset CSV path (relative paths resolve against the manifest's
    /// directory).
    pub csv: String,
    /// Label column in the CSV.
    pub label: String,
    /// Explainer: `lime`, `anchor`, or `shap`.
    pub explainer: String,
    /// Prime seed (default 42).
    pub seed: u64,
    /// Rows of the dataset's test split kept as the warm set (default
    /// 200).
    pub warm_rows: usize,
    /// Worker threads for this tenant's engine (default: the host's
    /// available parallelism).
    pub threads: Option<usize>,
    /// Max in-flight explain requests before 429 (default: unlimited;
    /// 0 is legal and rejects everything — useful for draining a
    /// tenant).
    pub quota: Option<usize>,
    /// Explicit snapshot to hydrate the first cold start from,
    /// overriding `<snapshot_dir>/<name>.shws`. Must be readable at
    /// startup (fail-fast), like single-tenant `--warm-from`.
    pub warm_from: Option<String>,
}

/// The parsed, validated manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantManifest {
    pub tenants: Vec<TenantSpec>,
    /// Index into `tenants` of the tenant requests without a `tenant`
    /// field route to (the first tenant unless `default` names another).
    pub default: usize,
    /// Directory for per-tenant snapshots (`<dir>/<name>.shws`); when
    /// absent, cold starts never hydrate and evictions never persist.
    pub snapshot_dir: Option<PathBuf>,
    /// Global warm-memory budget across all tenants' stores, bytes.
    pub memory_budget_bytes: Option<usize>,
    /// Evict a warm tenant idle longer than this (milliseconds).
    pub idle_evict_ms: Option<u64>,
}

const EXPLAINERS: [&str; 3] = ["lime", "anchor", "shap"];

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl TenantManifest {
    /// Parses and validates manifest text. Every error is a
    /// human-readable string naming the offending field.
    pub fn parse(text: &str) -> Result<TenantManifest, String> {
        let root = Json::parse(text).map_err(|e| format!("manifest is not valid JSON: {e}"))?;
        let tenants_json = root
            .get("tenants")
            .and_then(Json::as_arr)
            .ok_or("manifest needs a non-empty \"tenants\" array")?;
        if tenants_json.is_empty() {
            return Err("manifest needs at least one tenant".into());
        }
        let mut tenants = Vec::with_capacity(tenants_json.len());
        for (i, t) in tenants_json.iter().enumerate() {
            tenants.push(TenantSpec::from_json(t, i)?);
        }
        for (i, t) in tenants.iter().enumerate() {
            if tenants[..i].iter().any(|o| o.name == t.name) {
                return Err(format!("duplicate tenant name \"{}\"", t.name));
            }
        }
        let default = match root.get("default").and_then(Json::as_str) {
            None => 0,
            Some(name) => tenants
                .iter()
                .position(|t| t.name == name)
                .ok_or_else(|| format!("default tenant \"{name}\" is not in the manifest"))?,
        };
        let snapshot_dir = root
            .get("snapshot_dir")
            .and_then(Json::as_str)
            .map(PathBuf::from);
        let memory_budget_bytes = root
            .get("memory_budget_bytes")
            .and_then(Json::as_u64)
            .map(|b| b as usize);
        let idle_evict_ms = root.get("idle_evict_ms").and_then(Json::as_u64);
        Ok(TenantManifest {
            tenants,
            default,
            snapshot_dir,
            memory_budget_bytes,
            idle_evict_ms,
        })
    }

    /// Reads and parses the manifest at `path`, resolving each tenant's
    /// relative `csv` / `warm_from` paths against the manifest's
    /// directory (so a manifest is relocatable with its data).
    pub fn load(path: &Path) -> Result<TenantManifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
        let mut m = TenantManifest::parse(&text)?;
        let base = path.parent().unwrap_or(Path::new("."));
        let resolve = |p: &str| {
            if Path::new(p).is_absolute() {
                p.to_string()
            } else {
                base.join(p).to_string_lossy().into_owned()
            }
        };
        for t in &mut m.tenants {
            t.csv = resolve(&t.csv);
            t.warm_from = t.warm_from.as_deref().map(resolve);
        }
        m.snapshot_dir = m.snapshot_dir.map(|d| {
            if d.is_absolute() {
                d
            } else {
                base.join(d)
            }
        });
        Ok(m)
    }

    /// The per-tenant snapshot path, `<snapshot_dir>/<name>.shws` —
    /// hydration source at cold start, at-evict persistence target.
    /// `warm_from` overrides the *first* hydration only; once the
    /// lifecycle owns the tenant, this layout is authoritative.
    pub fn snapshot_path(&self, tenant: &str) -> Option<PathBuf> {
        self.snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("{tenant}.shws")))
    }
}

impl TenantSpec {
    fn from_json(t: &Json, i: usize) -> Result<TenantSpec, String> {
        let str_field = |key: &str| -> Result<String, String> {
            t.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("tenant #{i}: missing or non-string \"{key}\""))
        };
        let name = str_field("name")?;
        if !valid_name(&name) {
            return Err(format!(
                "tenant #{i}: name \"{name}\" must be non-empty [A-Za-z0-9_-]"
            ));
        }
        let explainer = str_field("explainer")?.to_ascii_lowercase();
        if !EXPLAINERS.contains(&explainer.as_str()) {
            return Err(format!(
                "tenant \"{name}\": unknown explainer \"{explainer}\" (one of lime, anchor, shap)"
            ));
        }
        Ok(TenantSpec {
            csv: str_field("csv")?,
            label: str_field("label")?,
            explainer,
            seed: t.get("seed").and_then(Json::as_u64).unwrap_or(42),
            warm_rows: t
                .get("warm_rows")
                .and_then(Json::as_u64)
                .map_or(200, |r| r as usize),
            threads: t
                .get("threads")
                .and_then(Json::as_u64)
                .map(|n| n as usize),
            quota: t.get("quota").and_then(Json::as_u64).map(|q| q as usize),
            warm_from: t.get("warm_from").and_then(Json::as_str).map(str::to_string),
            name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "default": "b",
        "snapshot_dir": "snaps",
        "memory_budget_bytes": 1048576,
        "idle_evict_ms": 250,
        "tenants": [
            {"name": "a", "csv": "a.csv", "label": "y", "explainer": "lime"},
            {"name": "b", "csv": "b.csv", "label": "y", "explainer": "SHAP",
             "seed": 7, "warm_rows": 50, "quota": 8, "threads": 2,
             "warm_from": "seeded.shws"}
        ]
    }"#;

    #[test]
    fn good_manifest_parses_with_defaults_applied() {
        let m = TenantManifest::parse(GOOD).expect("parses");
        assert_eq!(m.tenants.len(), 2);
        assert_eq!(m.default, 1, "default routes to b");
        assert_eq!(m.memory_budget_bytes, Some(1 << 20));
        assert_eq!(m.idle_evict_ms, Some(250));
        let a = &m.tenants[0];
        assert_eq!((a.seed, a.warm_rows), (42, 200), "defaults");
        assert_eq!((a.quota, a.threads), (None, None));
        let b = &m.tenants[1];
        assert_eq!(b.explainer, "shap", "explainer is case-insensitive");
        assert_eq!((b.seed, b.warm_rows, b.quota), (7, 50, Some(8)));
        assert_eq!(
            m.snapshot_path("a"),
            Some(PathBuf::from("snaps").join("a.shws"))
        );
    }

    #[test]
    fn structural_errors_are_reported_by_name() {
        for (text, needle) in [
            ("{", "not valid JSON"),
            ("{\"tenants\": []}", "at least one tenant"),
            ("{\"tenants\": 3}", "\"tenants\" array"),
            (
                "{\"tenants\": [{\"name\": \"a\", \"csv\": \"a\", \"label\": \"y\", \"explainer\": \"tree\"}]}",
                "unknown explainer",
            ),
            (
                "{\"tenants\": [{\"name\": \"a b\", \"csv\": \"a\", \"label\": \"y\", \"explainer\": \"lime\"}]}",
                "A-Za-z0-9_-",
            ),
            (
                "{\"tenants\": [{\"name\": \"a\", \"csv\": \"a\", \"label\": \"y\", \"explainer\": \"lime\"}, {\"name\": \"a\", \"csv\": \"b\", \"label\": \"y\", \"explainer\": \"lime\"}]}",
                "duplicate tenant",
            ),
            (
                "{\"default\": \"zzz\", \"tenants\": [{\"name\": \"a\", \"csv\": \"a\", \"label\": \"y\", \"explainer\": \"lime\"}]}",
                "not in the manifest",
            ),
            (
                "{\"tenants\": [{\"name\": \"a\", \"csv\": \"a\", \"explainer\": \"lime\"}]}",
                "\"label\"",
            ),
        ] {
            let err = TenantManifest::parse(text).expect_err(text);
            assert!(err.contains(needle), "{text}: {err} (wanted {needle})");
        }
    }

    #[test]
    fn no_snapshot_dir_means_no_snapshot_paths() {
        let m = TenantManifest::parse(
            "{\"tenants\": [{\"name\": \"a\", \"csv\": \"a\", \"label\": \"y\", \"explainer\": \"lime\"}]}",
        )
        .unwrap();
        assert_eq!(m.snapshot_path("a"), None);
        assert_eq!(m.default, 0);
    }

    #[test]
    fn load_resolves_relative_paths_against_the_manifest_dir() {
        let dir = std::env::temp_dir().join(format!("shahin_manifest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cluster.json");
        std::fs::write(&path, GOOD).unwrap();
        let m = TenantManifest::load(&path).expect("loads");
        assert_eq!(m.tenants[0].csv, dir.join("a.csv").to_string_lossy());
        assert_eq!(
            m.tenants[1].warm_from.as_deref(),
            Some(dir.join("seeded.shws").to_string_lossy().as_ref())
        );
        assert_eq!(m.snapshot_dir.as_deref(), Some(dir.join("snaps").as_path()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
