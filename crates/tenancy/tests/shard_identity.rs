//! Property test: consistent-hash sharding is pure routing. For any
//! ring size, vnode count, and request mix, explaining through
//! [`ShardMap`]-derived assignments is bit-identical to the engine's
//! own chunked `explain` — per-tuple seeding depends only on the global
//! warm row, never on which worker runs it.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use shahin::{BatchConfig, MetricsRegistry, WarmEngine, WarmExplainer, WarmOutcome, WarmRequest};
use shahin_explain::{ExplainContext, FeatureWeights, LimeExplainer, LimeParams};
use shahin_model::{CountingClassifier, MajorityClass};
use shahin_tabular::{train_test_split, DatasetPreset};
use shahin_tenancy::ShardMap;

const SEED: u64 = 11;
const WARM_ROWS: usize = 16;

struct Fixture {
    engine: WarmEngine<MajorityClass>,
    signatures: Vec<u64>,
    baseline: Vec<FeatureWeights>,
}

/// Primed once: proptest shrinks re-run the closure many times and a
/// fresh prime per case would dominate the run.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(5);
        let mut rng = StdRng::seed_from_u64(5);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
        let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
        let rows: Vec<usize> = (0..WARM_ROWS.min(split.test.n_rows())).collect();
        let warm = split.test.select(&rows);
        let engine = WarmEngine::prime(
            BatchConfig {
                n_threads: Some(2),
                ..Default::default()
            },
            WarmExplainer::Lime(LimeExplainer::new(LimeParams {
                n_samples: 40,
                ..Default::default()
            })),
            ctx,
            clf,
            warm,
            SEED,
            &MetricsRegistry::new(),
        );
        let signatures = engine.row_signatures();
        let baseline = explain_rows(&engine, &(0..engine.n_rows()).collect::<Vec<_>>(), None, 1);
        Fixture {
            engine,
            signatures,
            baseline,
        }
    })
}

fn requests(rows: &[usize]) -> Vec<WarmRequest> {
    rows.iter()
        .map(|&row| WarmRequest {
            row,
            request_id: row as u64,
            trace: None,
        })
        .collect()
}

/// Explains `rows`, through `explain_assigned` when an assignment is
/// given and the engine's own chunking otherwise.
fn explain_rows(
    engine: &WarmEngine<MajorityClass>,
    rows: &[usize],
    assign: Option<&[usize]>,
    n_workers: usize,
) -> Vec<FeatureWeights> {
    let reqs = requests(rows);
    let outs = match assign {
        Some(assign) => engine.explain_assigned(&reqs, assign, n_workers),
        None => engine.explain(&reqs),
    };
    outs.into_iter()
        .map(|o| match o {
            WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
            WarmOutcome::Failed(f) => panic!("unexpected failure: {f:?}"),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: ShardMap routing of any request mix over
    /// any ring produces the same bits as unsharded explanation.
    #[test]
    fn sharded_explanations_are_bit_identical_to_unsharded(
        n_shards in 1usize..9,
        vnodes in (0usize..3).prop_map(|i| [1usize, 4, 64][i]),
        rows in proptest::collection::vec(0usize..WARM_ROWS, 1..40),
    ) {
        let fx = fixture();
        let map = ShardMap::with_vnodes(n_shards, vnodes);
        let assign: Vec<usize> = rows
            .iter()
            .map(|&row| map.shard_for(fx.signatures[row]))
            .collect();
        let sharded = explain_rows(&fx.engine, &rows, Some(&assign), map.n_shards());
        for (i, (&row, got)) in rows.iter().zip(&sharded).enumerate() {
            prop_assert_eq!(
                got,
                &fx.baseline[row],
                "request {} (row {}) diverged under {} shards × {} vnodes",
                i, row, n_shards, vnodes
            );
        }
    }

    /// Routing itself is a function of the signature alone: same ring →
    /// same shard, duplicate rows always co-locate.
    #[test]
    fn duplicate_rows_always_route_to_the_same_shard(
        n_shards in 1usize..9,
        row in 0usize..WARM_ROWS,
    ) {
        let fx = fixture();
        let map = ShardMap::new(n_shards);
        let a = map.shard_for(fx.signatures[row]);
        let b = map.shard_for(fx.signatures[row]);
        prop_assert_eq!(a, b);
        prop_assert!(a < n_shards.max(1));
    }
}
