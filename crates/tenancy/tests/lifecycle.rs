//! Lifecycle tests over real (small) warm engines: lazy cold starts,
//! quota gating, idle/budget eviction with at-evict snapshots, and
//! classifier-free bit-identical re-admission.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use shahin::obs::names;
use shahin::{BatchConfig, MetricsRegistry, WarmEngine, WarmExplainer, WarmOutcome, WarmRequest};
use shahin_explain::{ExplainContext, FeatureWeights, LimeExplainer, LimeParams};
use shahin_model::{CountingClassifier, MajorityClass};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};
use shahin_tenancy::{
    EvictRefused, Lifecycle, LifecyclePolicy, TenantConfig, TenantRegistry, WarmSlot,
};

const SEED: u64 = 11;
const WARM_ROWS: usize = 18;

fn setup() -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
    let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(5);
    let mut rng = StdRng::seed_from_u64(5);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
    let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
    let rows: Vec<usize> = (0..WARM_ROWS.min(split.test.n_rows())).collect();
    (ctx, clf, split.test.select(&rows))
}

fn lime() -> LimeExplainer {
    LimeExplainer::new(LimeParams {
        n_samples: 60,
        ..Default::default()
    })
}

fn tenant_config(
    name: &str,
    quota: Option<usize>,
    snapshot_path: Option<PathBuf>,
    warm_from: Option<PathBuf>,
) -> TenantConfig<MajorityClass> {
    let (ctx, clf, warm) = setup();
    let inner = clf.inner().clone();
    let n_rows = warm.n_rows();
    let reg = MetricsRegistry::new();
    TenantConfig {
        name: name.to_string(),
        n_rows,
        quota,
        snapshot_path,
        warm_from,
        factory: Box::new(move |bytes| {
            WarmEngine::prime_warm_or_cold(
                BatchConfig {
                    n_threads: Some(2),
                    ..Default::default()
                },
                WarmExplainer::Lime(lime()),
                ctx.clone(),
                // A fresh counting wrapper per materialization, so each
                // engine's invocation count is its own.
                CountingClassifier::new(inner.clone()),
                warm.clone(),
                SEED,
                &reg,
                bytes,
            )
        }),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("shahin_tenancy_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn explain_all(slot: &Arc<WarmSlot<MajorityClass>>) -> Vec<FeatureWeights> {
    let reqs: Vec<WarmRequest> = (0..slot.engine.n_rows())
        .map(|row| WarmRequest {
            row,
            request_id: row as u64,
            trace: None,
        })
        .collect();
    let assign = slot.assign(&reqs);
    slot.engine
        .explain_assigned(&reqs, &assign, slot.n_workers())
        .into_iter()
        .map(|out| match out {
            WarmOutcome::Ok { explanation, .. } => explanation.weights().unwrap().clone(),
            WarmOutcome::Failed(f) => panic!("unexpected failure: {f:?}"),
        })
        .collect()
}

#[test]
fn tenants_materialize_lazily_and_exactly_once() {
    let obs = MetricsRegistry::new();
    let reg = TenantRegistry::new(
        vec![tenant_config("acme", None, None, None), tenant_config("globex", None, None, None)],
        0,
        LifecyclePolicy::default(),
        &obs,
    );
    assert_eq!(reg.lifecycle(0), Lifecycle::Cold);
    assert_eq!(reg.lifecycle(1), Lifecycle::Cold);
    assert_eq!(obs.counter(names::TENANCY_COLD_STARTS).get(), 0);
    assert!(reg.slot(0).is_none(), "cold tenants hold no engine");

    let (slot, cold) = reg.ensure_warm(0);
    let cold = cold.expect("first touch is a cold start");
    assert!(!cold.hydrated, "no snapshot configured");
    assert!(cold.rejection.is_none());
    assert_eq!(reg.lifecycle(0), Lifecycle::Warm);
    assert_eq!(reg.lifecycle(1), Lifecycle::Cold, "untouched tenant stays cold");
    assert_eq!(obs.counter(names::TENANCY_COLD_STARTS).get(), 1);
    assert_eq!(obs.histogram(names::TENANCY_COLD_START_LATENCY).count(), 1);
    assert_eq!(
        obs.counter(&names::tenant_metric("acme", "cold_starts")).get(),
        1
    );

    let (again, none) = reg.ensure_warm(0);
    assert!(none.is_none(), "second touch is warm");
    assert!(Arc::ptr_eq(&slot.engine, &again.engine));
    assert_eq!(obs.counter(names::TENANCY_COLD_STARTS).get(), 1);

    // The warm slot serves; its per-tenant label is set (multi-tenant).
    assert_eq!(slot.engine.tenant().map(|t| &**t), Some("acme"));
    assert_eq!(explain_all(&slot).len(), WARM_ROWS);
}

#[test]
fn quota_gates_admission_and_counts_rejections() {
    let obs = MetricsRegistry::new();
    let reg = TenantRegistry::new(
        vec![tenant_config("acme", Some(2), None, None), tenant_config("globex", Some(0), None, None)],
        0,
        LifecyclePolicy::default(),
        &obs,
    );
    assert!(reg.try_admit(0));
    assert!(reg.try_admit(0));
    assert!(!reg.try_admit(0), "third concurrent request is over quota");
    assert_eq!(obs.counter(names::TENANCY_QUOTA_REJECTIONS).get(), 1);
    assert_eq!(
        obs.counter(&names::tenant_metric("acme", "quota_rejections")).get(),
        1
    );
    reg.release(0);
    assert!(reg.try_admit(0), "released capacity is reusable");

    // quota 0 rejects everything — the draining-tenant idiom.
    assert!(!reg.try_admit(1));
    assert_eq!(obs.counter(names::TENANCY_QUOTA_REJECTIONS).get(), 2);
    assert_eq!(
        obs.counter(&names::tenant_metric("acme", "requests")).get(),
        3,
        "only admitted requests count"
    );
}

#[test]
fn routing_resolves_default_and_counts_unknown_tenants() {
    let obs = MetricsRegistry::new();
    let reg = TenantRegistry::new(
        vec![tenant_config("acme", None, None, None), tenant_config("globex", None, None, None)],
        1,
        LifecyclePolicy::default(),
        &obs,
    );
    assert_eq!(reg.resolve(None), Some(1), "absent tenant → default");
    assert_eq!(reg.resolve(Some("acme")), Some(0));
    assert_eq!(reg.resolve(Some("hooli")), None);
    assert_eq!(obs.counter(names::TENANCY_UNKNOWN_TENANT).get(), 1);
}

#[test]
fn eviction_snapshots_and_readmission_is_classifier_free_and_bit_identical() {
    let dir = scratch_dir("evict");
    let snap = dir.join("acme.shws");
    let obs = MetricsRegistry::new();
    let reg = TenantRegistry::new(
        vec![
            tenant_config("acme", None, Some(snap.clone()), None),
            tenant_config("globex", None, None, None),
        ],
        0,
        LifecyclePolicy::default(),
        &obs,
    );

    let (slot, _) = reg.ensure_warm(0);
    let before = explain_all(&slot);
    let invocations_before = slot.engine.invocations();
    assert!(invocations_before > 0, "cold prime must call the classifier");
    drop(slot);

    assert!(!snap.exists());
    reg.evict(0).expect("idle warm tenant evicts");
    assert_eq!(reg.lifecycle(0), Lifecycle::Evicted);
    assert!(snap.exists(), "eviction leaves an at-evict snapshot");
    assert!(reg.slot(0).is_none(), "the engine is gone");
    assert_eq!(obs.counter(names::TENANCY_EVICTIONS).get(), 1);
    assert_eq!(obs.counter(names::PERSIST_SNAPSHOTS_TAKEN).get(), 1);

    // Re-admission hydrates from the at-evict snapshot: zero classifier
    // invocations, bit-identical explanations.
    let (slot, cold) = reg.ensure_warm(0);
    let cold = cold.expect("re-admission is a cold start");
    assert!(cold.hydrated, "hydrates from the at-evict snapshot");
    assert!(cold.rejection.is_none());
    assert_eq!(reg.lifecycle(0), Lifecycle::Warm);
    assert_eq!(obs.counter(names::TENANCY_HYDRATIONS).get(), 1);
    assert_eq!(
        slot.engine.invocations(),
        0,
        "hydration must not touch the classifier"
    );
    assert_eq!(explain_all(&slot), before, "re-admitted engine is bit-identical");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eviction_refuses_inflight_and_cold_tenants() {
    let obs = MetricsRegistry::new();
    let reg = TenantRegistry::new(
        vec![tenant_config("acme", None, None, None), tenant_config("globex", None, None, None)],
        0,
        LifecyclePolicy::default(),
        &obs,
    );
    assert_eq!(reg.evict(0), Err(EvictRefused::NotWarm), "cold tenant");
    let (_slot, _) = reg.ensure_warm(0);
    assert!(reg.try_admit(0));
    assert_eq!(reg.evict(0), Err(EvictRefused::Inflight));
    reg.release(0);
    assert!(reg.evict(0).is_ok());
    assert_eq!(obs.counter(names::TENANCY_EVICTIONS).get(), 1);
}

#[test]
fn single_tenant_wrapper_never_evicts_and_stays_unlabeled() {
    let (ctx, clf, warm) = setup();
    let reg_metrics = MetricsRegistry::new();
    let engine = Arc::new(WarmEngine::prime(
        BatchConfig {
            n_threads: Some(1),
            ..Default::default()
        },
        WarmExplainer::Lime(lime()),
        ctx,
        clf,
        warm,
        SEED,
        &reg_metrics,
    ));
    let reg = TenantRegistry::single(Arc::clone(&engine), None);
    assert!(!reg.multi());
    assert_eq!(reg.lifecycle(0), Lifecycle::Warm, "wrapped engine is already warm");
    assert_eq!(reg.resolve(None), Some(0));
    assert_eq!(reg.evict(0), Err(EvictRefused::NotRebuildable));
    let (slot, cold) = reg.ensure_warm(0);
    assert!(cold.is_none());
    assert!(slot.engine.tenant().is_none(), "no tenant label single-tenant");
    assert!(reg.enforce().is_empty(), "lifecycle never touches the sole engine");
}

#[test]
fn idle_and_budget_enforcement_evict_lru_first() {
    let dir = scratch_dir("enforce");
    let obs = MetricsRegistry::new();
    let reg = TenantRegistry::new(
        vec![
            tenant_config("acme", None, Some(dir.join("acme.shws")), None),
            tenant_config("globex", None, Some(dir.join("globex.shws")), None),
        ],
        0,
        // A 1-byte budget: any warm tenant is over budget.
        LifecyclePolicy {
            memory_budget_bytes: Some(1),
            idle_evict: None,
        },
        &obs,
    );
    let (_a, _) = reg.ensure_warm(0);
    std::thread::sleep(Duration::from_millis(5));
    let (_b, _) = reg.ensure_warm(1);
    drop((_a, _b));
    let (_, bytes) = reg.warm_totals();
    assert!(bytes > 1, "warm stores hold real bytes");

    let evicted = reg.enforce();
    let order: Vec<&str> = evicted.iter().map(|(n, _)| &**n).collect();
    assert_eq!(order, ["acme", "globex"], "LRU (least recently used) goes first");
    assert!(evicted.iter().all(|(_, why)| *why == "budget"));
    assert_eq!(reg.lifecycle(0), Lifecycle::Evicted);
    assert_eq!(reg.lifecycle(1), Lifecycle::Evicted);
    assert_eq!(obs.gauge(names::TENANCY_WARM_TENANTS).get(), 0);

    // Idle keepalive: re-warm one tenant, let it sit past the keepalive.
    let reg = TenantRegistry::new(
        vec![tenant_config("acme", None, None, None), tenant_config("globex", None, None, None)],
        0,
        LifecyclePolicy {
            memory_budget_bytes: None,
            idle_evict: Some(Duration::from_millis(1)),
        },
        &obs,
    );
    let (_slot, _) = reg.ensure_warm(0);
    drop(_slot);
    std::thread::sleep(Duration::from_millis(10));
    let evicted = reg.enforce();
    assert_eq!(evicted.len(), 1);
    assert_eq!(&*evicted[0].0, "acme");
    assert_eq!(evicted[0].1, "idle");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_from_overrides_the_first_hydration_only() {
    let dir = scratch_dir("warmfrom");
    let seeded = dir.join("seeded.shws");
    let snap = dir.join("acme.shws");

    // Produce a seed snapshot from a throwaway engine.
    {
        let cfg = tenant_config("seed", None, None, None);
        let (engine, _) = (cfg.factory)(None);
        engine.write_snapshot(&seeded).expect("seed snapshot");
    }

    let obs = MetricsRegistry::new();
    let reg = TenantRegistry::new(
        vec![
            tenant_config("acme", None, Some(snap.clone()), Some(seeded.clone())),
            tenant_config("globex", None, None, None),
        ],
        0,
        LifecyclePolicy::default(),
        &obs,
    );
    let (slot, cold) = reg.ensure_warm(0);
    assert!(cold.expect("cold start").hydrated, "warm_from seeds the first start");
    assert_eq!(slot.engine.invocations(), 0);
    drop(slot);
    reg.evict(0).expect("evicts");
    assert!(snap.exists(), "at-evict snapshot lands in the lifecycle layout");

    // Second start must use the lifecycle's own snapshot, not warm_from.
    std::fs::remove_file(&seeded).unwrap();
    let (_slot, cold) = reg.ensure_warm(0);
    assert!(cold.expect("cold start").hydrated, "hydrates from {snap:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
