//! Black-box classifiers for the Shahin reproduction.
//!
//! The paper explains predictions of a Random Forest trained on tabular
//! data; the explainers only ever see the model through a narrow
//! [`Classifier`] interface — that is the whole point of *model-agnostic*
//! explanations, and it is also what lets Shahin count and minimize
//! classifier invocations.
//!
//! Provided models:
//!
//! * [`DecisionTree`] — CART with Gini impurity, numeric threshold splits
//!   and categorical one-vs-rest splits,
//! * [`RandomForest`] — bagged trees with per-split feature subsampling
//!   (the paper's model, §4.1),
//! * [`LogisticRegression`] — a secondary black box over one-hot encoded
//!   features,
//! * [`MajorityClass`] — the trivial baseline.
//!
//! Instrumentation:
//!
//! * [`CountingClassifier`] counts invocations (the paper's cost driver:
//!   88–92% of explanation time is classifier calls),
//! * [`TracedClassifier`] records per-call and per-batch latency
//!   histograms into a `shahin_obs::MetricsRegistry`,
//! * [`SimulatedCost`] adds a calibrated busy-wait per call so wall-clock
//!   measurements reproduce the *shape* of the paper's Python timings.
//!
//! Fault tolerance (DESIGN.md §5e):
//!
//! * [`PredictError`] — the typed error taxonomy at the boundary,
//! * [`FallibleClassifier`] — the fallible face of [`Classifier`] (every
//!   infallible classifier implements it for free),
//! * [`ResilientClassifier`] — bounded retries, deadlines, a circuit
//!   breaker and output sanitization over any fallible classifier,
//! * [`ChaosClassifier`] — seeded, reproducible fault injection for
//!   exercising every failure path in CI.

pub mod chaos;
pub mod classifier;
pub mod error;
pub mod flat;
pub mod forest;
pub mod gbm;
pub mod instrument;
pub mod logistic;
pub mod metrics;
pub mod resilient;
pub mod tree;

pub use chaos::{ChaosClassifier, ChaosConfig, ChaosSnapshot};
pub use classifier::{Classifier, MajorityClass};
pub use error::PredictError;
pub use flat::FlatForest;
pub use forest::{ForestLayout, ForestParams, RandomForest};
pub use gbm::{GbmParams, GradientBoosting};
pub use instrument::{
    CountingClassifier, InvocationSnapshot, LatencyCost, SimulatedCost, TracedClassifier,
};
pub use logistic::LogisticRegression;
pub use metrics::{accuracy, confusion_matrix};
pub use resilient::{
    degraded_incidents, payload_message, FallibleClassifier, ResilienceSnapshot,
    ResilientClassifier, RetryPolicy,
};
pub use tree::{DecisionTree, TreeParams};
