//! Black-box classifiers for the Shahin reproduction.
//!
//! The paper explains predictions of a Random Forest trained on tabular
//! data; the explainers only ever see the model through a narrow
//! [`Classifier`] interface — that is the whole point of *model-agnostic*
//! explanations, and it is also what lets Shahin count and minimize
//! classifier invocations.
//!
//! Provided models:
//!
//! * [`DecisionTree`] — CART with Gini impurity, numeric threshold splits
//!   and categorical one-vs-rest splits,
//! * [`RandomForest`] — bagged trees with per-split feature subsampling
//!   (the paper's model, §4.1),
//! * [`LogisticRegression`] — a secondary black box over one-hot encoded
//!   features,
//! * [`MajorityClass`] — the trivial baseline.
//!
//! Instrumentation:
//!
//! * [`CountingClassifier`] counts invocations (the paper's cost driver:
//!   88–92% of explanation time is classifier calls),
//! * [`TracedClassifier`] records per-call and per-batch latency
//!   histograms into a `shahin_obs::MetricsRegistry`,
//! * [`SimulatedCost`] adds a calibrated busy-wait per call so wall-clock
//!   measurements reproduce the *shape* of the paper's Python timings.

pub mod classifier;
pub mod forest;
pub mod gbm;
pub mod instrument;
pub mod logistic;
pub mod metrics;
pub mod tree;

pub use classifier::{Classifier, MajorityClass};
pub use forest::{ForestParams, RandomForest};
pub use gbm::{GbmParams, GradientBoosting};
pub use instrument::{
    CountingClassifier, InvocationSnapshot, LatencyCost, SimulatedCost, TracedClassifier,
};
pub use logistic::LogisticRegression;
pub use metrics::{accuracy, confusion_matrix};
pub use tree::{DecisionTree, TreeParams};
