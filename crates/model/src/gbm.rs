//! Gradient-boosted trees for binary classification.
//!
//! A second non-trivial black box (beyond the Random Forest the paper
//! evaluates) to exercise the model-agnostic claim: Shahin never looks
//! inside the classifier, so its speedups must carry over unchanged.
//! Standard logistic-loss boosting: each round fits a small regression
//! tree to the negative gradient (residuals) of the current logits.

use rand::seq::SliceRandom;
use rand::Rng;

use shahin_tabular::{Column, Dataset, Feature};

use crate::classifier::Classifier;

/// GBM hyperparameters.
#[derive(Clone, Debug)]
pub struct GbmParams {
    /// Boosting rounds.
    pub n_rounds: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum regression-tree depth.
    pub max_depth: usize,
    /// Minimum samples to split a node.
    pub min_samples_split: usize,
    /// Row subsample fraction per round (stochastic gradient boosting).
    pub subsample: f64,
}

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams {
            n_rounds: 30,
            learning_rate: 0.2,
            max_depth: 3,
            min_samples_split: 8,
            subsample: 0.8,
        }
    }
}

/// Arena node of a regression tree over mixed features.
#[derive(Clone, Debug)]
enum RNode {
    Leaf {
        value: f64,
    },
    SplitNum {
        attr: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
    SplitCat {
        attr: u32,
        code: u32,
        left: u32,
        right: u32,
    },
}

#[derive(Clone, Debug)]
struct RegressionTree {
    nodes: Vec<RNode>,
}

impl RegressionTree {
    fn predict(&self, instance: &[Feature]) -> f64 {
        let mut idx = 0u32;
        loop {
            match self.nodes[idx as usize] {
                RNode::Leaf { value } => return value,
                RNode::SplitNum {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if instance[attr as usize].num() < threshold {
                        left
                    } else {
                        right
                    };
                }
                RNode::SplitCat {
                    attr,
                    code,
                    left,
                    right,
                } => {
                    idx = if instance[attr as usize].cat() == code {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

struct RtBuilder<'a> {
    data: &'a Dataset,
    targets: &'a [f64],
    params: &'a GbmParams,
    nodes: Vec<RNode>,
}

impl RtBuilder<'_> {
    fn leaf(&mut self, rows: &[u32]) -> u32 {
        let value = rows.iter().map(|&r| self.targets[r as usize]).sum::<f64>() / rows.len() as f64;
        self.nodes.push(RNode::Leaf { value });
        (self.nodes.len() - 1) as u32
    }

    fn build(&mut self, rows: &mut Vec<u32>, depth: usize) -> u32 {
        if depth >= self.params.max_depth || rows.len() < self.params.min_samples_split {
            return self.leaf(rows);
        }
        // Best variance-reducing split across all attributes.
        let mut best: Option<(f64, RSplit)> = None;
        for attr in 0..self.data.n_attrs() {
            if let Some((score, split)) = self.best_split_on(attr, rows) {
                if best.as_ref().is_none_or(|(b, _)| score < *b) {
                    best = Some((score, split));
                }
            }
        }
        let total_sse = sse(rows.iter().map(|&r| self.targets[r as usize]));
        let Some((score, split)) = best else {
            return self.leaf(rows);
        };
        if score >= total_sse - 1e-12 {
            return self.leaf(rows);
        }
        let (mut left, mut right): (Vec<u32>, Vec<u32>) = match split {
            RSplit::Num { attr, threshold } => {
                let Column::Num(col) = self.data.column(attr as usize) else {
                    unreachable!()
                };
                rows.iter().partition(|&&r| col[r as usize] < threshold)
            }
            RSplit::Cat { attr, code } => {
                let Column::Cat(col) = self.data.column(attr as usize) else {
                    unreachable!()
                };
                rows.iter().partition(|&&r| col[r as usize] == code)
            }
        };
        if left.is_empty() || right.is_empty() {
            return self.leaf(rows);
        }
        rows.clear();
        self.nodes.push(RNode::Leaf { value: 0.0 });
        let idx = (self.nodes.len() - 1) as u32;
        let l = self.build(&mut left, depth + 1);
        let r = self.build(&mut right, depth + 1);
        self.nodes[idx as usize] = match split {
            RSplit::Num { attr, threshold } => RNode::SplitNum {
                attr,
                threshold,
                left: l,
                right: r,
            },
            RSplit::Cat { attr, code } => RNode::SplitCat {
                attr,
                code,
                left: l,
                right: r,
            },
        };
        idx
    }

    fn best_split_on(&self, attr: usize, rows: &[u32]) -> Option<(f64, RSplit)> {
        match self.data.column(attr) {
            Column::Num(col) => {
                let mut vals: Vec<(f64, f64)> = rows
                    .iter()
                    .map(|&r| (col[r as usize], self.targets[r as usize]))
                    .collect();
                vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature"));
                let total_sum: f64 = vals.iter().map(|v| v.1).sum();
                let total_sq: f64 = vals.iter().map(|v| v.1 * v.1).sum();
                let n = vals.len() as f64;
                let step = (vals.len() / 17).max(1);
                let mut best: Option<(f64, RSplit)> = None;
                let mut sum_l = 0.0;
                let mut n_l = 0.0;
                let mut next = step;
                for i in 0..vals.len() - 1 {
                    sum_l += vals[i].1;
                    n_l += 1.0;
                    if i + 1 < next {
                        continue;
                    }
                    next += step;
                    if vals[i].0 == vals[i + 1].0 {
                        continue;
                    }
                    // SSE = Σy² − (Σy)²/n per side; Σy² is shared.
                    let sum_r = total_sum - sum_l;
                    let n_r = n - n_l;
                    let score = total_sq - sum_l * sum_l / n_l - sum_r * sum_r / n_r;
                    if best.as_ref().is_none_or(|(b, _)| score < *b) {
                        best = Some((
                            score,
                            RSplit::Num {
                                attr: attr as u32,
                                threshold: 0.5 * (vals[i].0 + vals[i + 1].0),
                            },
                        ));
                    }
                }
                best
            }
            Column::Cat(col) => {
                let mut stats: Vec<(u32, f64, f64)> = Vec::new(); // (code, n, sum)
                let mut total_sum = 0.0;
                let mut total_sq = 0.0;
                for &r in rows {
                    let code = col[r as usize];
                    let t = self.targets[r as usize];
                    total_sum += t;
                    total_sq += t * t;
                    match stats.iter_mut().find(|s| s.0 == code) {
                        Some(s) => {
                            s.1 += 1.0;
                            s.2 += t;
                        }
                        None => stats.push((code, 1.0, t)),
                    }
                }
                if stats.len() < 2 {
                    return None;
                }
                let n = rows.len() as f64;
                stats
                    .iter()
                    .filter(|&&(_, n_l, _)| n_l < n)
                    .map(|&(code, n_l, sum_l)| {
                        let sum_r = total_sum - sum_l;
                        let n_r = n - n_l;
                        let score = total_sq - sum_l * sum_l / n_l - sum_r * sum_r / n_r;
                        (
                            score,
                            RSplit::Cat {
                                attr: attr as u32,
                                code,
                            },
                        )
                    })
                    .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"))
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum RSplit {
    Num { attr: u32, threshold: f64 },
    Cat { attr: u32, code: u32 },
}

fn sse(values: impl Iterator<Item = f64>) -> f64 {
    let (mut n, mut sum, mut sq) = (0.0, 0.0, 0.0);
    for v in values {
        n += 1.0;
        sum += v;
        sq += v * v;
    }
    if n == 0.0 {
        0.0
    } else {
        sq - sum * sum / n
    }
}

/// A trained gradient-boosted trees classifier.
#[derive(Clone, Debug)]
pub struct GradientBoosting {
    base_logit: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
}

impl GradientBoosting {
    /// Trains with logistic loss.
    pub fn fit(
        data: &Dataset,
        labels: &[u8],
        params: &GbmParams,
        rng: &mut impl Rng,
    ) -> GradientBoosting {
        assert_eq!(data.n_rows(), labels.len(), "label count mismatch");
        assert!(data.n_rows() > 0, "need training data");
        assert!(
            (0.0..=1.0).contains(&params.subsample) && params.subsample > 0.0,
            "subsample must be in (0, 1]"
        );
        let n = data.n_rows();
        let pos: f64 = labels.iter().map(|&l| f64::from(l)).sum();
        let prior = (pos / n as f64).clamp(1e-6, 1.0 - 1e-6);
        let base_logit = (prior / (1.0 - prior)).ln();

        let mut logits = vec![base_logit; n];
        let mut residuals = vec![0.0; n];
        let mut trees = Vec::with_capacity(params.n_rounds);
        let mut all_rows: Vec<u32> = (0..n as u32).collect();
        let sub = ((params.subsample * n as f64).round() as usize).clamp(1, n);
        for _ in 0..params.n_rounds {
            for i in 0..n {
                let p = 1.0 / (1.0 + (-logits[i]).exp());
                residuals[i] = f64::from(labels[i]) - p;
            }
            all_rows.shuffle(rng);
            let mut rows: Vec<u32> = all_rows[..sub].to_vec();
            let mut builder = RtBuilder {
                data,
                targets: &residuals,
                params,
                nodes: Vec::new(),
            };
            builder.build(&mut rows, 0);
            let tree = RegressionTree {
                nodes: builder.nodes,
            };
            for (i, logit) in logits.iter_mut().enumerate() {
                *logit += params.learning_rate * tree.predict(&data.instance(i));
            }
            trees.push(tree);
        }
        GradientBoosting {
            base_logit,
            learning_rate: params.learning_rate,
            trees,
        }
    }

    /// Number of boosted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for GradientBoosting {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let logit = self.base_logit
            + self.learning_rate * self.trees.iter().map(|t| t.predict(instance)).sum::<f64>();
        1.0 / (1.0 + (-logit).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_tabular::{train_test_split, DatasetPreset};

    #[test]
    fn learns_the_planted_concept() {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.1).generate(5);
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let gbm = GradientBoosting::fit(
            &split.train,
            &split.train_labels,
            &GbmParams::default(),
            &mut rng,
        );
        let preds: Vec<u8> = (0..split.test.n_rows())
            .map(|r| gbm.predict(&split.test.instance(r)))
            .collect();
        let acc = accuracy(&preds, &split.test_labels);
        assert!(acc > 0.70, "GBM accuracy only {acc}");
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let (data, labels) = DatasetPreset::Covertype.spec(0.01).generate(1);
        let mut rng = StdRng::seed_from_u64(2);
        let gbm = GradientBoosting::fit(&data, &labels, &GbmParams::default(), &mut rng);
        for r in 0..30.min(data.n_rows()) {
            let p = gbm.predict_proba(&data.instance(r));
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn deterministic_and_pure() {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.02).generate(3);
        let g1 = GradientBoosting::fit(
            &data,
            &labels,
            &GbmParams::default(),
            &mut StdRng::seed_from_u64(4),
        );
        let g2 = GradientBoosting::fit(
            &data,
            &labels,
            &GbmParams::default(),
            &mut StdRng::seed_from_u64(4),
        );
        let inst = data.instance(0);
        assert_eq!(g1.predict_proba(&inst), g2.predict_proba(&inst));
        assert_eq!(g1.predict_proba(&inst), g1.predict_proba(&inst));
    }

    #[test]
    fn single_class_training_is_stable() {
        let (data, _) = DatasetPreset::Recidivism.spec(0.01).generate(4);
        let labels = vec![1u8; data.n_rows()];
        let mut rng = StdRng::seed_from_u64(5);
        let gbm = GradientBoosting::fit(&data, &labels, &GbmParams::default(), &mut rng);
        let p = gbm.predict_proba(&data.instance(0));
        assert!(p > 0.9, "constant-positive data should predict ~1, got {p}");
    }

    #[test]
    fn more_rounds_do_not_hurt_training_fit() {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.03).generate(6);
        let mut rng = StdRng::seed_from_u64(7);
        let short = GradientBoosting::fit(
            &data,
            &labels,
            &GbmParams {
                n_rounds: 2,
                ..Default::default()
            },
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(7);
        let long = GradientBoosting::fit(
            &data,
            &labels,
            &GbmParams {
                n_rounds: 40,
                ..Default::default()
            },
            &mut rng,
        );
        let acc = |g: &GradientBoosting| {
            let preds: Vec<u8> = (0..data.n_rows())
                .map(|r| g.predict(&data.instance(r)))
                .collect();
            accuracy(&preds, &labels)
        };
        assert!(acc(&long) >= acc(&short) - 0.02, "boosting regressed");
    }
}
