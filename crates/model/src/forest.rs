//! Random Forests: bagged CART trees with feature subsampling.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use shahin_tabular::{Dataset, Feature};

use crate::classifier::Classifier;
use crate::flat::FlatForest;
use crate::tree::{DecisionTree, TreeParams};

/// Random Forest hyperparameters.
#[derive(Clone, Debug)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters. `max_features = 0` here means "use ⌊√m⌋".
    pub tree: TreeParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 25,
            tree: TreeParams {
                max_depth: 10,
                min_samples_split: 4,
                max_features: 0, // replaced by ⌊√m⌋ at fit time
                max_numeric_candidates: 16,
                max_categorical_candidates: 32,
            },
        }
    }
}

/// Which physical representation the forest's `predict*` paths traverse.
///
/// Both layouts encode the same fitted trees and produce bit-identical
/// outputs (see [`FlatForest`]); `Nested` exists so benchmarks and
/// equivalence tests can pin the legacy pointer-chasing layout.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ForestLayout {
    /// Contiguous CSR arrays (the default — cache-conscious hot path).
    #[default]
    Flat,
    /// Per-tree `Vec<Node>` arenas (the legacy layout).
    Nested,
}

/// A trained Random Forest binary classifier. Probability is the mean of
/// the trees' leaf probabilities.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    flat: FlatForest,
    layout: ForestLayout,
}

impl RandomForest {
    /// Trains the forest: each tree sees a bootstrap sample (with
    /// replacement, same size as the training set) and considers `⌊√m⌋`
    /// attributes per split. The fitted trees are flattened into a
    /// [`FlatForest`] here, once, so every `predict*` path can use the
    /// contiguous layout.
    pub fn fit(
        data: &Dataset,
        labels: &[u8],
        params: &ForestParams,
        rng: &mut impl Rng,
    ) -> RandomForest {
        assert!(params.n_trees >= 1, "need at least one tree");
        assert_eq!(data.n_rows(), labels.len(), "label count mismatch");
        let n = data.n_rows();
        let mut tree_params = params.tree.clone();
        if tree_params.max_features == 0 {
            tree_params.max_features = ((data.n_attrs() as f64).sqrt().floor() as usize).max(1);
        }
        let trees: Vec<DecisionTree> = (0..params.n_trees)
            .map(|_| {
                let mut tree_rng = StdRng::seed_from_u64(rng.gen());
                let rows: Vec<u32> = (0..n).map(|_| tree_rng.gen_range(0..n as u32)).collect();
                DecisionTree::fit_on_rows(data, labels, rows, &tree_params, &mut tree_rng)
            })
            .collect();
        let flat = FlatForest::from_trees(&trees);
        RandomForest {
            trees,
            flat,
            layout: ForestLayout::default(),
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// The flattened representation.
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }

    /// The layout `predict*` currently traverses.
    pub fn layout(&self) -> ForestLayout {
        self.layout
    }

    /// Selects the traversal layout (outputs are bit-identical either way).
    pub fn set_layout(&mut self, layout: ForestLayout) {
        self.layout = layout;
    }

    /// Builder-style [`Self::set_layout`].
    pub fn with_layout(mut self, layout: ForestLayout) -> RandomForest {
        self.layout = layout;
        self
    }

    /// Rows per worker below which batched prediction stays on one thread
    /// (tree traversal is cheap; spawning threads for small batches costs
    /// more than it saves).
    const MIN_ROWS_PER_WORKER: usize = 256;

    /// Sums every tree's probability into `out[i]` for row `i` of the flat
    /// row-major buffer and divides by the tree count. The outer loop is
    /// over trees so one tree's nodes stay hot in cache across the whole
    /// row chunk; the borrowed flat slice means callers never materialize
    /// per-row `Vec<Feature>`s.
    fn predict_chunk(&self, rows: &[Feature], n_attrs: usize, out: &mut [f64]) {
        match self.layout {
            ForestLayout::Flat => self.flat.predict_chunk(rows, n_attrs, out),
            ForestLayout::Nested => {
                for tree in &self.trees {
                    for (sum, inst) in out.iter_mut().zip(rows.chunks_exact(n_attrs)) {
                        *sum += tree.predict_proba(inst);
                    }
                }
                // Divide (not multiply by a reciprocal) so each row's
                // result is bit-identical to `predict_proba`'s `sum / n`.
                let n = self.trees.len() as f64;
                for sum in out.iter_mut() {
                    *sum /= n;
                }
            }
        }
    }

    /// [`Classifier::predict_proba_flat`] with an explicit worker count
    /// (clamped so each worker gets at least
    /// [`Self::MIN_ROWS_PER_WORKER`] rows). Row order — and hence the
    /// output — is independent of the worker count and of the layout.
    pub fn predict_flat_with(&self, rows: &[Feature], n_attrs: usize, workers: usize) -> Vec<f64> {
        if n_attrs == 0 {
            return Vec::new();
        }
        debug_assert_eq!(rows.len() % n_attrs, 0, "ragged flat buffer");
        let n_rows = rows.len() / n_attrs;
        let mut out = vec![0.0; n_rows];
        let workers = workers.min(n_rows / Self::MIN_ROWS_PER_WORKER);
        if workers < 2 {
            self.predict_chunk(rows, n_attrs, &mut out);
            return out;
        }
        let chunk = n_rows.div_ceil(workers);
        std::thread::scope(|scope| {
            for (rows, sums) in rows.chunks(chunk * n_attrs).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || self.predict_chunk(rows, n_attrs, sums));
            }
        });
        out
    }

    /// [`Classifier::predict_proba_batch`] with an explicit worker count:
    /// flattens the rows into one contiguous buffer, then dispatches to
    /// [`Self::predict_flat_with`].
    pub fn predict_batch_with(&self, instances: &[Vec<Feature>], workers: usize) -> Vec<f64> {
        let Some(first) = instances.first() else {
            return Vec::new();
        };
        let n_attrs = first.len();
        if n_attrs == 0 {
            // Zero-arity rows cannot be framed in a flat buffer; only
            // degenerate single-leaf trees can answer them anyway.
            return instances.iter().map(|i| self.predict_proba(i)).collect();
        }
        let mut buf = Vec::with_capacity(instances.len() * n_attrs);
        for inst in instances {
            debug_assert_eq!(inst.len(), n_attrs, "ragged batch");
            buf.extend_from_slice(inst);
        }
        self.predict_flat_with(&buf, n_attrs, workers)
    }
}

impl Classifier for RandomForest {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        match self.layout {
            ForestLayout::Flat => self.flat.predict_proba(instance),
            ForestLayout::Nested => {
                let sum: f64 = self.trees.iter().map(|t| t.predict_proba(instance)).sum();
                sum / self.trees.len() as f64
            }
        }
    }

    /// Single-dispatch batch evaluation: per-tree inner loop over the rows,
    /// chunk-parallel across worker threads when the batch is large enough
    /// to amortize the spawns. Row order (and hence the output) is
    /// independent of the thread count.
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.predict_batch_with(instances, workers)
    }

    /// The allocation-free fast path: batched rows arrive already packed
    /// into one flat row-major buffer and go straight to the chunked
    /// traversal loop.
    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        self.predict_flat_with(rows, n_attrs, workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_tabular::{train_test_split, DatasetPreset};

    #[test]
    fn beats_majority_on_planted_concept() {
        let spec = DatasetPreset::Recidivism.spec(0.1);
        let (data, labels) = spec.generate(17);
        let mut rng = StdRng::seed_from_u64(0);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let forest = RandomForest::fit(
            &split.train,
            &split.train_labels,
            &ForestParams {
                n_trees: 15,
                ..Default::default()
            },
            &mut rng,
        );
        let preds: Vec<u8> = (0..split.test.n_rows())
            .map(|r| forest.predict(&split.test.instance(r)))
            .collect();
        let acc = accuracy(&preds, &split.test_labels);
        assert!(acc > 0.70, "forest accuracy only {acc}");
    }

    #[test]
    fn probability_is_tree_average() {
        let spec = DatasetPreset::Covertype.spec(0.01);
        let (data, labels) = spec.generate(5);
        let mut rng = StdRng::seed_from_u64(1);
        let forest = RandomForest::fit(
            &data,
            &labels,
            &ForestParams {
                n_trees: 5,
                ..Default::default()
            },
            &mut rng,
        );
        let inst = data.instance(0);
        let avg: f64 = forest
            .trees
            .iter()
            .map(|t| t.predict_proba(&inst))
            .sum::<f64>()
            / 5.0;
        assert!((forest.predict_proba(&inst) - avg).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = DatasetPreset::Recidivism.spec(0.02);
        let (data, labels) = spec.generate(2);
        let f1 = RandomForest::fit(
            &data,
            &labels,
            &ForestParams::default(),
            &mut StdRng::seed_from_u64(99),
        );
        let f2 = RandomForest::fit(
            &data,
            &labels,
            &ForestParams::default(),
            &mut StdRng::seed_from_u64(99),
        );
        for r in 0..20.min(data.n_rows()) {
            let inst = data.instance(r);
            assert_eq!(f1.predict_proba(&inst), f2.predict_proba(&inst));
        }
    }

    #[test]
    fn layouts_are_bit_identical() {
        let spec = DatasetPreset::Recidivism.spec(0.03);
        let (data, labels) = spec.generate(13);
        let mut rng = StdRng::seed_from_u64(31);
        let forest = RandomForest::fit(
            &data,
            &labels,
            &ForestParams {
                n_trees: 7,
                ..Default::default()
            },
            &mut rng,
        );
        assert_eq!(forest.layout(), ForestLayout::Flat);
        let nested = forest.clone().with_layout(ForestLayout::Nested);
        let rows: Vec<Vec<_>> = (0..data.n_rows()).map(|r| data.instance(r)).collect();
        for row in &rows {
            assert_eq!(forest.predict_proba(row), nested.predict_proba(row));
        }
        for workers in [1usize, 2, 8] {
            assert_eq!(
                forest.predict_batch_with(&rows, workers),
                nested.predict_batch_with(&rows, workers)
            );
        }
    }

    #[test]
    fn batch_matches_per_row_predictions_at_any_worker_count() {
        // Large enough (> 2 * MIN_ROWS_PER_WORKER) that the multi-worker
        // path actually splits, regardless of this machine's core count.
        let spec = DatasetPreset::Recidivism.spec(0.06);
        let (data, labels) = spec.generate(8);
        let mut rng = StdRng::seed_from_u64(5);
        let forest = RandomForest::fit(
            &data,
            &labels,
            &ForestParams {
                n_trees: 5,
                ..Default::default()
            },
            &mut rng,
        );
        let rows: Vec<Vec<_>> = (0..data.n_rows()).map(|r| data.instance(r)).collect();
        assert!(rows.len() > 2 * RandomForest::MIN_ROWS_PER_WORKER);
        let singles: Vec<f64> = rows.iter().map(|r| forest.predict_proba(r)).collect();
        for workers in [1usize, 2, 3, 8] {
            let batch = forest.predict_batch_with(&rows, workers);
            assert_eq!(batch.len(), singles.len());
            for (b, s) in batch.iter().zip(&singles) {
                assert!((b - s).abs() < 1e-12, "workers={workers}: {b} vs {s}");
            }
        }
        // The default entry point agrees too.
        assert_eq!(
            forest.predict_proba_batch(&rows),
            forest.predict_batch_with(&rows, 1)
        );
        // And so does the flat-buffer entry point.
        let n_attrs = rows[0].len();
        let buf: Vec<Feature> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        assert_eq!(
            forest.predict_proba_flat(&buf, n_attrs),
            forest.predict_batch_with(&rows, 1)
        );
    }

    #[test]
    fn small_batches_stay_single_threaded_but_exact() {
        let spec = DatasetPreset::Covertype.spec(0.01);
        let (data, labels) = spec.generate(9);
        let mut rng = StdRng::seed_from_u64(6);
        let forest = RandomForest::fit(&data, &labels, &ForestParams::default(), &mut rng);
        let rows: Vec<Vec<_>> = (0..10).map(|r| data.instance(r)).collect();
        let batch = forest.predict_batch_with(&rows, 16);
        for (r, b) in rows.iter().zip(&batch) {
            assert_eq!(*b, forest.predict_proba(r));
        }
        assert_eq!(forest.predict_batch_with(&[], 4), Vec::<f64>::new());
    }

    #[test]
    fn prediction_is_pure() {
        // Same instance, same answer, every time (Shahin's cache soundness
        // depends on this).
        let spec = DatasetPreset::Recidivism.spec(0.02);
        let (data, labels) = spec.generate(3);
        let mut rng = StdRng::seed_from_u64(4);
        let forest = RandomForest::fit(&data, &labels, &ForestParams::default(), &mut rng);
        let inst = data.instance(7);
        let p = forest.predict_proba(&inst);
        for _ in 0..10 {
            assert_eq!(forest.predict_proba(&inst), p);
        }
    }
}
