//! Classification quality metrics.

/// Fraction of predictions matching the labels.
pub fn accuracy(predictions: &[u8], labels: &[u8]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!labels.is_empty(), "need at least one label");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// 2×2 confusion matrix `[[tn, fp], [fn, tp]]` indexed `[actual][predicted]`.
pub fn confusion_matrix(predictions: &[u8], labels: &[u8]) -> [[u64; 2]; 2] {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut m = [[0u64; 2]; 2];
    for (&p, &l) in predictions.iter().zip(labels) {
        m[usize::from(l != 0)][usize::from(p != 0)] += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1], &[1, 0, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
    }

    #[test]
    fn confusion_counts() {
        let m = confusion_matrix(&[1, 0, 1, 1], &[1, 0, 0, 1]);
        assert_eq!(m[1][1], 2); // tp
        assert_eq!(m[0][0], 1); // tn
        assert_eq!(m[0][1], 1); // fp
        assert_eq!(m[1][0], 0); // fn
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        accuracy(&[1], &[1, 0]);
    }
}
