//! Classifier instrumentation: invocation counting, latency tracing and
//! simulated cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use shahin_obs::{Counter, Histogram, MetricsRegistry};
use shahin_tabular::Feature;

use crate::classifier::Classifier;

/// A consistent reading of a [`CountingClassifier`]: invocation count and
/// time elapsed since the same epoch (construction or the last
/// [`CountingClassifier::reset`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvocationSnapshot {
    /// Invocations observed since the epoch.
    pub invocations: u64,
    /// Wall time since the epoch.
    pub elapsed: Duration,
}

/// Wraps a classifier and counts every `predict_proba` invocation.
///
/// Classifier invocations are the paper's cost driver (88% of LIME's and
/// 92% of Anchor's runtime on Census-Income, §1), so they are the primary
/// metric every experiment reports. The counter is shared across clones,
/// letting baselines thread the same classifier through worker threads.
///
/// # Ordering semantics
///
/// The count is a relaxed atomic on the hot path. [`Self::reset`] and
/// [`Self::snapshot`] serialize against *each other* through the epoch
/// lock, so a snapshot never mixes a pre-reset count with a post-reset
/// epoch (or vice versa). They do **not** serialize against in-flight
/// predictions: a worker mid-batch when `reset` fires lands its increment
/// in the *new* epoch. Callers who need an exact figure must quiesce the
/// workers first (every driver in this repo joins its threads before
/// reading), and callers who only report rates get a consistent
/// count/elapsed pair either way.
#[derive(Clone)]
pub struct CountingClassifier<C> {
    inner: C,
    count: Arc<AtomicU64>,
    epoch: Arc<Mutex<Instant>>,
}

impl<C: Classifier> CountingClassifier<C> {
    /// Wraps `inner` with a fresh counter.
    pub fn new(inner: C) -> CountingClassifier<C> {
        CountingClassifier {
            inner,
            count: Arc::new(AtomicU64::new(0)),
            epoch: Arc::new(Mutex::new(Instant::now())),
        }
    }

    /// Invocations so far.
    pub fn invocations(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and starts a new timing epoch. See the
    /// type-level docs for what happens to increments in flight.
    pub fn reset(&self) {
        let mut epoch = self.epoch.lock().expect("epoch lock poisoned");
        // Release pairs with the Acquire in snapshot(): anything counted
        // before the reset is either observed by an earlier snapshot or
        // discarded here, never attributed to the new epoch.
        self.count.store(0, Ordering::Release);
        *epoch = Instant::now();
    }

    /// Reads count and elapsed-since-epoch as one consistent pair: the
    /// epoch lock is held across both reads, so a concurrent [`reset`]
    /// cannot slip between them.
    ///
    /// [`reset`]: Self::reset
    pub fn snapshot(&self) -> InvocationSnapshot {
        let epoch = self.epoch.lock().expect("epoch lock poisoned");
        InvocationSnapshot {
            invocations: self.count.load(Ordering::Acquire),
            elapsed: epoch.elapsed(),
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Classifier> Classifier for CountingClassifier<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.predict_proba(instance)
    }

    /// Counts the whole batch with one atomic add (a batch of `n` rows is
    /// `n` invocations, same as `n` single calls) and forwards to the
    /// wrapped classifier's batch path.
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        self.count
            .fetch_add(instances.len() as u64, Ordering::Relaxed);
        self.inner.predict_proba_batch(instances)
    }

    /// Same accounting for the flat-buffer path: one atomic add of the
    /// row count, then forward so the inner fast path survives.
    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        if let Some(n) = rows.len().checked_div(n_attrs) {
            self.count.fetch_add(n as u64, Ordering::Relaxed);
        }
        self.inner.predict_proba_flat(rows, n_attrs)
    }
}

/// Wraps a classifier and busy-waits a fixed duration per invocation,
/// emulating the per-call latency of the heavyweight Python models the
/// paper measures. A busy-wait (not `sleep`) keeps a core occupied, so the
/// Dist-k thread baseline contends for CPUs the way k machines would not —
/// making the comparison conservative in Shahin's favor exactly where the
/// paper's was.
#[derive(Clone)]
pub struct SimulatedCost<C> {
    inner: C,
    cost: Duration,
}

impl<C: Classifier> SimulatedCost<C> {
    /// Adds `cost` of busy-wait per invocation.
    pub fn new(inner: C, cost: Duration) -> SimulatedCost<C> {
        SimulatedCost { inner, cost }
    }

    /// The configured per-invocation cost.
    pub fn cost(&self) -> Duration {
        self.cost
    }
}

impl<C: Classifier> Classifier for SimulatedCost<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let p = self.inner.predict_proba(instance);
        if !self.cost.is_zero() {
            let start = Instant::now();
            while start.elapsed() < self.cost {
                std::hint::spin_loop();
            }
        }
        p
    }

    /// Charges the full per-row cost for every batched row (no batching
    /// discount — the simulated model is pay-per-invocation), as one
    /// busy-wait after the inner batch dispatch.
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        let out = self.inner.predict_proba_batch(instances);
        if !self.cost.is_zero() && !instances.is_empty() {
            let total = self.cost * instances.len() as u32;
            let start = Instant::now();
            while start.elapsed() < total {
                std::hint::spin_loop();
            }
        }
        out
    }

    /// Flat-buffer path: same pay-per-row busy-wait after the inner
    /// dispatch.
    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        let out = self.inner.predict_proba_flat(rows, n_attrs);
        if !self.cost.is_zero() && n_attrs > 0 && !rows.is_empty() {
            let total = self.cost * (rows.len() / n_attrs) as u32;
            let start = Instant::now();
            while start.elapsed() < total {
                std::hint::spin_loop();
            }
        }
        out
    }
}

/// Wraps a classifier and *sleeps* a fixed duration per invocation,
/// emulating the round-trip latency of a remote classifier service.
///
/// The difference from [`SimulatedCost`] matters for the parallel bench:
/// a busy-wait occupies a core, so on a machine with few cores concurrent
/// explanation threads cannot overlap it. A sleeping thread yields the
/// CPU, so in-flight "requests" from different worker threads overlap the
/// way they would against a real model server — which is the deployment
/// the multi-core pipeline targets.
#[derive(Clone)]
pub struct LatencyCost<C> {
    inner: C,
    latency: Duration,
}

impl<C: Classifier> LatencyCost<C> {
    /// Adds `latency` of sleep per invocation.
    pub fn new(inner: C, latency: Duration) -> LatencyCost<C> {
        LatencyCost { inner, latency }
    }

    /// The configured per-invocation latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl<C: Classifier> Classifier for LatencyCost<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.inner.predict_proba(instance)
    }

    /// Charges the full per-row latency for every batched row with a single
    /// sleep (the conservative no-pipelining model: `n` requests in flight
    /// back to back, no batch endpoint).
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        if !self.latency.is_zero() && !instances.is_empty() {
            std::thread::sleep(self.latency * instances.len() as u32);
        }
        self.inner.predict_proba_batch(instances)
    }

    /// Flat-buffer path: one sleep covering every packed row, then forward.
    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        if !self.latency.is_zero() && n_attrs > 0 && !rows.is_empty() {
            std::thread::sleep(self.latency * (rows.len() / n_attrs) as u32);
        }
        self.inner.predict_proba_flat(rows, n_attrs)
    }
}

/// Wraps a classifier and records every invocation's latency into a
/// [`MetricsRegistry`]: per-row latency under `classifier.predict`,
/// whole-batch latency under `classifier.predict_batch`, plus the
/// counters `classifier.invocations` (rows) and `classifier.batch_calls`
/// (batch dispatches).
///
/// When the registry is disabled the wrapper skips even the
/// `Instant::now` calls, so a no-op registry measures genuine
/// instrumentation overhead (the `bench_obs` comparison).
#[derive(Clone)]
pub struct TracedClassifier<C> {
    inner: C,
    latency: Histogram,
    batch_latency: Histogram,
    invocations: Counter,
    batch_calls: Counter,
}

impl<C: Classifier> TracedClassifier<C> {
    /// Wraps `inner`, registering its metrics in `registry`.
    pub fn new(inner: C, registry: &MetricsRegistry) -> TracedClassifier<C> {
        TracedClassifier {
            inner,
            latency: registry.histogram("classifier.predict"),
            batch_latency: registry.histogram("classifier.predict_batch"),
            invocations: registry.counter("classifier.invocations"),
            batch_calls: registry.counter("classifier.batch_calls"),
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Classifier> Classifier for TracedClassifier<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        self.invocations.inc();
        if !self.latency.is_enabled() {
            return self.inner.predict_proba(instance);
        }
        let span = self.latency.start();
        let p = self.inner.predict_proba(instance);
        span.stop();
        p
    }

    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        self.invocations.add(instances.len() as u64);
        self.batch_calls.inc();
        if !self.batch_latency.is_enabled() {
            return self.inner.predict_proba_batch(instances);
        }
        let span = self.batch_latency.start();
        let out = self.inner.predict_proba_batch(instances);
        span.stop();
        out
    }

    /// Flat-buffer path: identical accounting to the batch path — `n`
    /// invocations, one batch call, one `predict_batch` span.
    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        let n = rows.len().checked_div(n_attrs).unwrap_or(0);
        self.invocations.add(n as u64);
        self.batch_calls.inc();
        if !self.batch_latency.is_enabled() {
            return self.inner.predict_proba_flat(rows, n_attrs);
        }
        let span = self.batch_latency.start();
        let out = self.inner.predict_proba_flat(rows, n_attrs);
        span.stop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::MajorityClass;

    #[test]
    fn counts_invocations() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        assert_eq!(c.invocations(), 0);
        c.predict_proba(&[Feature::Num(0.0)]);
        c.predict(&[Feature::Num(0.0)]);
        assert_eq!(c.invocations(), 2);
        c.reset();
        assert_eq!(c.invocations(), 0);
    }

    #[test]
    fn clones_share_the_counter() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        let c2 = c.clone();
        c.predict_proba(&[]);
        c2.predict_proba(&[]);
        assert_eq!(c.invocations(), 2);
        assert_eq!(c2.invocations(), 2);
    }

    #[test]
    fn batch_counts_each_row() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        c.predict_proba_batch(&[vec![], vec![], vec![]]);
        assert_eq!(c.invocations(), 3);
    }

    #[test]
    fn flat_path_counts_rows_like_batch() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        let rows = vec![Feature::Cat(0); 6];
        assert_eq!(c.predict_proba_flat(&rows, 2), vec![1.0; 3]);
        assert_eq!(c.invocations(), 3);

        let reg = MetricsRegistry::new();
        let t = TracedClassifier::new(MajorityClass::fit(&[1]), &reg);
        t.predict_proba_flat(&rows, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("classifier.invocations"), 2);
        assert_eq!(snap.counter("classifier.batch_calls"), 1);
        assert_eq!(snap.histograms["classifier.predict_batch"].count, 1);
    }

    #[test]
    fn simulated_cost_takes_time() {
        let c = SimulatedCost::new(MajorityClass::fit(&[1]), Duration::from_micros(200));
        let start = Instant::now();
        for _ in 0..10 {
            c.predict_proba(&[]);
        }
        assert!(start.elapsed() >= Duration::from_micros(2000));
    }

    #[test]
    fn zero_cost_is_free() {
        let c = SimulatedCost::new(MajorityClass::fit(&[1]), Duration::ZERO);
        assert_eq!(c.predict_proba(&[]), 1.0);
    }

    #[test]
    fn latency_cost_sleeps_per_row_and_forwards() {
        let c = LatencyCost::new(MajorityClass::fit(&[1]), Duration::from_micros(500));
        let start = Instant::now();
        let out = c.predict_proba_batch(&[vec![], vec![], vec![], vec![]]);
        assert!(start.elapsed() >= Duration::from_micros(2000));
        assert_eq!(out, vec![1.0; 4]);
        assert_eq!(c.latency(), Duration::from_micros(500));
    }

    #[test]
    fn latency_cost_zero_is_free() {
        let c = LatencyCost::new(MajorityClass::fit(&[0]), Duration::ZERO);
        assert_eq!(c.predict_proba(&[]), 0.0);
        assert_eq!(c.predict_proba_batch(&[vec![]]), vec![0.0]);
    }

    #[test]
    fn latency_sleeps_overlap_across_threads() {
        // The property the parallel bench relies on: unlike a busy-wait,
        // sleeping invocations from different threads overlap even on a
        // single core.
        let c = LatencyCost::new(MajorityClass::fit(&[1]), Duration::from_millis(20));
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = &c;
                scope.spawn(move || c.predict_proba(&[]));
            }
        });
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(20));
        assert!(
            elapsed < Duration::from_millis(70),
            "sleeps serialized: {elapsed:?}"
        );
    }

    #[test]
    fn wrappers_compose() {
        let c =
            CountingClassifier::new(SimulatedCost::new(MajorityClass::fit(&[0]), Duration::ZERO));
        assert_eq!(c.predict(&[]), 0);
        assert_eq!(c.invocations(), 1);
    }

    #[test]
    fn snapshot_reads_count_and_elapsed_together() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        c.predict_proba(&[]);
        c.predict_proba(&[]);
        let snap = c.snapshot();
        assert_eq!(snap.invocations, 2);
        assert!(snap.elapsed > Duration::ZERO);
        c.reset();
        let snap = c.snapshot();
        assert_eq!(snap.invocations, 0);
    }

    #[test]
    fn reset_and_snapshot_stay_consistent_under_races() {
        // Hammer reset/snapshot/predict from three threads: every snapshot
        // must be internally consistent (count from the epoch its elapsed
        // was measured against — concretely, no snapshot taken right after
        // a reset may see a large stale count with a tiny elapsed).
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                for _ in 0..2000 {
                    c.predict_proba(&[]);
                }
            });
            for _ in 0..200 {
                c.reset();
                let snap = c.snapshot();
                assert!(snap.invocations <= 2000);
            }
            worker.join().unwrap();
        });
    }

    #[test]
    fn traced_classifier_records_latency_and_counts() {
        let reg = MetricsRegistry::new();
        let c = TracedClassifier::new(MajorityClass::fit(&[1]), &reg);
        c.predict_proba(&[]);
        c.predict_proba_batch(&[vec![], vec![], vec![]]);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("classifier.invocations"), 4);
        assert_eq!(snap.counter("classifier.batch_calls"), 1);
        let h = &snap.histograms["classifier.predict"];
        assert_eq!(h.count, 1);
        assert_eq!(snap.histograms["classifier.predict_batch"].count, 1);
    }

    #[test]
    fn traced_classifier_noop_registry_still_predicts() {
        let reg = MetricsRegistry::disabled();
        let c = TracedClassifier::new(MajorityClass::fit(&[1]), &reg);
        assert_eq!(c.predict_proba(&[]), 1.0);
        assert_eq!(c.predict_proba_batch(&[vec![]]), vec![1.0]);
        assert!(reg.snapshot().counters.is_empty());
    }

    #[test]
    fn traced_and_counting_compose() {
        let reg = MetricsRegistry::new();
        let c = TracedClassifier::new(CountingClassifier::new(MajorityClass::fit(&[1])), &reg);
        c.predict_proba_batch(&[vec![], vec![]]);
        assert_eq!(c.inner().invocations(), 2);
        assert_eq!(reg.snapshot().counter("classifier.invocations"), 2);
    }
}
