//! Classifier instrumentation: invocation counting and simulated cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shahin_tabular::Feature;

use crate::classifier::Classifier;

/// Wraps a classifier and counts every `predict_proba` invocation.
///
/// Classifier invocations are the paper's cost driver (88% of LIME's and
/// 92% of Anchor's runtime on Census-Income, §1), so they are the primary
/// metric every experiment reports. The counter is shared across clones,
/// letting baselines thread the same classifier through worker threads.
#[derive(Clone)]
pub struct CountingClassifier<C> {
    inner: C,
    count: Arc<AtomicU64>,
}

impl<C: Classifier> CountingClassifier<C> {
    /// Wraps `inner` with a fresh counter.
    pub fn new(inner: C) -> CountingClassifier<C> {
        CountingClassifier {
            inner,
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Invocations so far.
    pub fn invocations(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Classifier> Classifier for CountingClassifier<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.predict_proba(instance)
    }
}

/// Wraps a classifier and busy-waits a fixed duration per invocation,
/// emulating the per-call latency of the heavyweight Python models the
/// paper measures. A busy-wait (not `sleep`) keeps a core occupied, so the
/// Dist-k thread baseline contends for CPUs the way k machines would not —
/// making the comparison conservative in Shahin's favor exactly where the
/// paper's was.
#[derive(Clone)]
pub struct SimulatedCost<C> {
    inner: C,
    cost: Duration,
}

impl<C: Classifier> SimulatedCost<C> {
    /// Adds `cost` of busy-wait per invocation.
    pub fn new(inner: C, cost: Duration) -> SimulatedCost<C> {
        SimulatedCost { inner, cost }
    }

    /// The configured per-invocation cost.
    pub fn cost(&self) -> Duration {
        self.cost
    }
}

impl<C: Classifier> Classifier for SimulatedCost<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let p = self.inner.predict_proba(instance);
        if !self.cost.is_zero() {
            let start = Instant::now();
            while start.elapsed() < self.cost {
                std::hint::spin_loop();
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::MajorityClass;

    #[test]
    fn counts_invocations() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        assert_eq!(c.invocations(), 0);
        c.predict_proba(&[Feature::Num(0.0)]);
        c.predict(&[Feature::Num(0.0)]);
        assert_eq!(c.invocations(), 2);
        c.reset();
        assert_eq!(c.invocations(), 0);
    }

    #[test]
    fn clones_share_the_counter() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        let c2 = c.clone();
        c.predict_proba(&[]);
        c2.predict_proba(&[]);
        assert_eq!(c.invocations(), 2);
        assert_eq!(c2.invocations(), 2);
    }

    #[test]
    fn batch_counts_each_row() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        c.predict_proba_batch(&[vec![], vec![], vec![]]);
        assert_eq!(c.invocations(), 3);
    }

    #[test]
    fn simulated_cost_takes_time() {
        let c = SimulatedCost::new(MajorityClass::fit(&[1]), Duration::from_micros(200));
        let start = Instant::now();
        for _ in 0..10 {
            c.predict_proba(&[]);
        }
        assert!(start.elapsed() >= Duration::from_micros(2000));
    }

    #[test]
    fn zero_cost_is_free() {
        let c = SimulatedCost::new(MajorityClass::fit(&[1]), Duration::ZERO);
        assert_eq!(c.predict_proba(&[]), 1.0);
    }

    #[test]
    fn wrappers_compose() {
        let c = CountingClassifier::new(SimulatedCost::new(
            MajorityClass::fit(&[0]),
            Duration::ZERO,
        ));
        assert_eq!(c.predict(&[]), 0);
        assert_eq!(c.invocations(), 1);
    }
}
