//! Classifier instrumentation: invocation counting and simulated cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shahin_tabular::Feature;

use crate::classifier::Classifier;

/// Wraps a classifier and counts every `predict_proba` invocation.
///
/// Classifier invocations are the paper's cost driver (88% of LIME's and
/// 92% of Anchor's runtime on Census-Income, §1), so they are the primary
/// metric every experiment reports. The counter is shared across clones,
/// letting baselines thread the same classifier through worker threads.
#[derive(Clone)]
pub struct CountingClassifier<C> {
    inner: C,
    count: Arc<AtomicU64>,
}

impl<C: Classifier> CountingClassifier<C> {
    /// Wraps `inner` with a fresh counter.
    pub fn new(inner: C) -> CountingClassifier<C> {
        CountingClassifier {
            inner,
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Invocations so far.
    pub fn invocations(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Classifier> Classifier for CountingClassifier<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.predict_proba(instance)
    }

    /// Counts the whole batch with one atomic add (a batch of `n` rows is
    /// `n` invocations, same as `n` single calls) and forwards to the
    /// wrapped classifier's batch path.
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        self.count
            .fetch_add(instances.len() as u64, Ordering::Relaxed);
        self.inner.predict_proba_batch(instances)
    }
}

/// Wraps a classifier and busy-waits a fixed duration per invocation,
/// emulating the per-call latency of the heavyweight Python models the
/// paper measures. A busy-wait (not `sleep`) keeps a core occupied, so the
/// Dist-k thread baseline contends for CPUs the way k machines would not —
/// making the comparison conservative in Shahin's favor exactly where the
/// paper's was.
#[derive(Clone)]
pub struct SimulatedCost<C> {
    inner: C,
    cost: Duration,
}

impl<C: Classifier> SimulatedCost<C> {
    /// Adds `cost` of busy-wait per invocation.
    pub fn new(inner: C, cost: Duration) -> SimulatedCost<C> {
        SimulatedCost { inner, cost }
    }

    /// The configured per-invocation cost.
    pub fn cost(&self) -> Duration {
        self.cost
    }
}

impl<C: Classifier> Classifier for SimulatedCost<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let p = self.inner.predict_proba(instance);
        if !self.cost.is_zero() {
            let start = Instant::now();
            while start.elapsed() < self.cost {
                std::hint::spin_loop();
            }
        }
        p
    }

    /// Charges the full per-row cost for every batched row (no batching
    /// discount — the simulated model is pay-per-invocation), as one
    /// busy-wait after the inner batch dispatch.
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        let out = self.inner.predict_proba_batch(instances);
        if !self.cost.is_zero() && !instances.is_empty() {
            let total = self.cost * instances.len() as u32;
            let start = Instant::now();
            while start.elapsed() < total {
                std::hint::spin_loop();
            }
        }
        out
    }
}

/// Wraps a classifier and *sleeps* a fixed duration per invocation,
/// emulating the round-trip latency of a remote classifier service.
///
/// The difference from [`SimulatedCost`] matters for the parallel bench:
/// a busy-wait occupies a core, so on a machine with few cores concurrent
/// explanation threads cannot overlap it. A sleeping thread yields the
/// CPU, so in-flight "requests" from different worker threads overlap the
/// way they would against a real model server — which is the deployment
/// the multi-core pipeline targets.
#[derive(Clone)]
pub struct LatencyCost<C> {
    inner: C,
    latency: Duration,
}

impl<C: Classifier> LatencyCost<C> {
    /// Adds `latency` of sleep per invocation.
    pub fn new(inner: C, latency: Duration) -> LatencyCost<C> {
        LatencyCost { inner, latency }
    }

    /// The configured per-invocation latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }
}

impl<C: Classifier> Classifier for LatencyCost<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.inner.predict_proba(instance)
    }

    /// Charges the full per-row latency for every batched row with a single
    /// sleep (the conservative no-pipelining model: `n` requests in flight
    /// back to back, no batch endpoint).
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        if !self.latency.is_zero() && !instances.is_empty() {
            std::thread::sleep(self.latency * instances.len() as u32);
        }
        self.inner.predict_proba_batch(instances)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::MajorityClass;

    #[test]
    fn counts_invocations() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1, 0]));
        assert_eq!(c.invocations(), 0);
        c.predict_proba(&[Feature::Num(0.0)]);
        c.predict(&[Feature::Num(0.0)]);
        assert_eq!(c.invocations(), 2);
        c.reset();
        assert_eq!(c.invocations(), 0);
    }

    #[test]
    fn clones_share_the_counter() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        let c2 = c.clone();
        c.predict_proba(&[]);
        c2.predict_proba(&[]);
        assert_eq!(c.invocations(), 2);
        assert_eq!(c2.invocations(), 2);
    }

    #[test]
    fn batch_counts_each_row() {
        let c = CountingClassifier::new(MajorityClass::fit(&[1]));
        c.predict_proba_batch(&[vec![], vec![], vec![]]);
        assert_eq!(c.invocations(), 3);
    }

    #[test]
    fn simulated_cost_takes_time() {
        let c = SimulatedCost::new(MajorityClass::fit(&[1]), Duration::from_micros(200));
        let start = Instant::now();
        for _ in 0..10 {
            c.predict_proba(&[]);
        }
        assert!(start.elapsed() >= Duration::from_micros(2000));
    }

    #[test]
    fn zero_cost_is_free() {
        let c = SimulatedCost::new(MajorityClass::fit(&[1]), Duration::ZERO);
        assert_eq!(c.predict_proba(&[]), 1.0);
    }

    #[test]
    fn latency_cost_sleeps_per_row_and_forwards() {
        let c = LatencyCost::new(MajorityClass::fit(&[1]), Duration::from_micros(500));
        let start = Instant::now();
        let out = c.predict_proba_batch(&[vec![], vec![], vec![], vec![]]);
        assert!(start.elapsed() >= Duration::from_micros(2000));
        assert_eq!(out, vec![1.0; 4]);
        assert_eq!(c.latency(), Duration::from_micros(500));
    }

    #[test]
    fn latency_cost_zero_is_free() {
        let c = LatencyCost::new(MajorityClass::fit(&[0]), Duration::ZERO);
        assert_eq!(c.predict_proba(&[]), 0.0);
        assert_eq!(c.predict_proba_batch(&[vec![]]), vec![0.0]);
    }

    #[test]
    fn latency_sleeps_overlap_across_threads() {
        // The property the parallel bench relies on: unlike a busy-wait,
        // sleeping invocations from different threads overlap even on a
        // single core.
        let c = LatencyCost::new(MajorityClass::fit(&[1]), Duration::from_millis(20));
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = &c;
                scope.spawn(move || c.predict_proba(&[]));
            }
        });
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(20));
        assert!(
            elapsed < Duration::from_millis(70),
            "sleeps serialized: {elapsed:?}"
        );
    }

    #[test]
    fn wrappers_compose() {
        let c =
            CountingClassifier::new(SimulatedCost::new(MajorityClass::fit(&[0]), Duration::ZERO));
        assert_eq!(c.predict(&[]), 0);
        assert_eq!(c.invocations(), 1);
    }
}
