//! Deterministic fault injection at the classifier boundary.
//!
//! [`ChaosClassifier`] wraps a real classifier and injects failures —
//! transient errors, latency spikes, NaN outputs, panics — from a seeded,
//! reproducible schedule so every failure path in the pipeline is
//! testable in CI.
//!
//! # Reproducibility
//!
//! Fault decisions hash the *instance content* (plus the chaos seed),
//! never the call order: the same instance draws the same fault at any
//! thread count and in any interleaving. Retryable faults (transient,
//! latency) additionally consult a per-instance attempt counter so the
//! k-th retry of an instance deterministically succeeds — without it, a
//! content-hashed transient would fail forever and "retryable" would be a
//! lie. Panic and NaN faults are sticky: the same instance always panics
//! (or always yields NaN), which keeps the set of quarantined tuples
//! schedule-invariant.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use shahin_tabular::Feature;

use crate::classifier::Classifier;
use crate::error::PredictError;
use crate::resilient::{instance_hash, splitmix64, FallibleClassifier};

/// Fault rates and shapes of a [`ChaosClassifier`]. Rates are
/// probabilities in `[0, 1]` evaluated per *instance* (not per call) in
/// priority order: panic, then transient, then NaN, then latency.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed of the fault schedule. Same seed + same instances ⇒ same
    /// faults, at any thread count.
    pub seed: u64,
    /// Fraction of instances whose first call(s) fail with
    /// [`PredictError::Transient`] before succeeding.
    pub transient_rate: f64,
    /// Fraction of instances that always return NaN (exercises the
    /// sanitizer).
    pub nan_rate: f64,
    /// Fraction of instances that always panic (exercises per-tuple
    /// quarantine).
    pub panic_rate: f64,
    /// Fraction of instances whose first call(s) sleep for
    /// [`ChaosConfig::latency_spike`] before succeeding.
    pub latency_rate: f64,
    /// Duration of an injected latency spike.
    pub latency_spike: Duration,
    /// Maximum consecutive failures a retryable fault injects before the
    /// instance succeeds (the actual burst is hash-derived in
    /// `1..=max_burst`).
    pub max_burst: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            transient_rate: 0.05,
            nan_rate: 0.01,
            panic_rate: 0.0,
            latency_rate: 0.0,
            latency_spike: Duration::from_millis(5),
            max_burst: 2,
        }
    }
}

/// What the schedule assigns to one instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    None,
    Panic,
    Transient { burst: u32 },
    Nan,
    Latency { burst: u32 },
}

/// Counts of injected faults, for reconciliation in tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosSnapshot {
    /// Transient errors injected.
    pub transient: u64,
    /// NaN outputs injected.
    pub nan: u64,
    /// Panics injected.
    pub panics: u64,
    /// Latency spikes injected.
    pub latency: u64,
}

/// A classifier wrapper injecting faults from a seeded schedule.
///
/// Implements only [`FallibleClassifier`] (never [`Classifier`]): the
/// type system forces a [`crate::ResilientClassifier`] — or an explicitly
/// fault-aware caller — between injected chaos and the explainers.
pub struct ChaosClassifier<C> {
    inner: C,
    config: ChaosConfig,
    /// Attempts seen per instance hash; gates retryable faults so the
    /// burst eventually passes.
    attempts: Mutex<HashMap<u64, u32>>,
    injected_transient: AtomicU64,
    injected_nan: AtomicU64,
    injected_panics: AtomicU64,
    injected_latency: AtomicU64,
}

impl<C: Classifier> ChaosClassifier<C> {
    /// Wraps `inner` under the given fault schedule.
    pub fn new(inner: C, config: ChaosConfig) -> ChaosClassifier<C> {
        ChaosClassifier {
            inner,
            config,
            attempts: Mutex::new(HashMap::new()),
            injected_transient: AtomicU64::new(0),
            injected_nan: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_latency: AtomicU64::new(0),
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Counts of injected faults so far.
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            transient: self.injected_transient.load(Ordering::Acquire),
            nan: self.injected_nan.load(Ordering::Acquire),
            panics: self.injected_panics.load(Ordering::Acquire),
            latency: self.injected_latency.load(Ordering::Acquire),
        }
    }

    /// The schedule: maps an instance hash to its fault, by carving the
    /// unit interval into rate-sized bands (priority order).
    fn fault_for(&self, h: u64) -> Fault {
        let u = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
        let c = &self.config;
        let burst = 1 + (splitmix64(h ^ 0xB1A5) % u64::from(c.max_burst.max(1))) as u32;
        let mut edge = c.panic_rate;
        if u < edge {
            return Fault::Panic;
        }
        edge += c.transient_rate;
        if u < edge {
            return Fault::Transient { burst };
        }
        edge += c.nan_rate;
        if u < edge {
            return Fault::Nan;
        }
        edge += c.latency_rate;
        if u < edge {
            return Fault::Latency { burst };
        }
        Fault::None
    }

    /// Bumps and returns the previous attempt count for an instance.
    fn record_attempt(&self, h: u64) -> u32 {
        let mut attempts = self.attempts.lock();
        let n = attempts.entry(h).or_insert(0);
        let prev = *n;
        *n += 1;
        prev
    }
}

impl<C: Classifier> FallibleClassifier for ChaosClassifier<C> {
    fn try_predict_proba(&self, instance: &[Feature]) -> Result<f64, PredictError> {
        let h = instance_hash(instance, self.config.seed);
        match self.fault_for(h) {
            Fault::None => Ok(self.inner.predict_proba(instance)),
            Fault::Panic => {
                self.injected_panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected panic for instance {h:016x}");
            }
            Fault::Nan => {
                self.injected_nan.fetch_add(1, Ordering::Relaxed);
                Ok(f64::NAN)
            }
            Fault::Transient { burst } => {
                if self.record_attempt(h) < burst {
                    self.injected_transient.fetch_add(1, Ordering::Relaxed);
                    Err(PredictError::Transient {
                        message: format!("chaos: injected transient for instance {h:016x}"),
                    })
                } else {
                    Ok(self.inner.predict_proba(instance))
                }
            }
            Fault::Latency { burst } => {
                if self.record_attempt(h) < burst {
                    self.injected_latency.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.config.latency_spike);
                }
                Ok(self.inner.predict_proba(instance))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorityClass;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn inst(x: u32) -> Vec<Feature> {
        vec![Feature::Cat(x), Feature::Cat(x / 3)]
    }

    fn chaos(config: ChaosConfig) -> ChaosClassifier<MajorityClass> {
        ChaosClassifier::new(MajorityClass::fit(&[1, 1, 1, 0]), config)
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let clf = chaos(ChaosConfig {
            transient_rate: 0.0,
            nan_rate: 0.0,
            panic_rate: 0.0,
            latency_rate: 0.0,
            ..ChaosConfig::default()
        });
        for x in 0..200 {
            assert_eq!(clf.try_predict_proba(&inst(x)), Ok(0.75));
        }
        assert_eq!(clf.snapshot(), ChaosSnapshot::default());
    }

    #[test]
    fn fault_schedule_is_content_deterministic() {
        let a = chaos(ChaosConfig::default());
        let b = chaos(ChaosConfig::default());
        // NaN != NaN, so compare through bit patterns.
        let canon = |r: Result<f64, PredictError>| r.map(f64::to_bits);
        for x in 0..500 {
            let ra = canon(a.try_predict_proba(&inst(x)));
            let rb = canon(b.try_predict_proba(&inst(x)));
            assert_eq!(ra, rb, "instance {x} diverged");
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn transient_bursts_pass_after_bounded_retries() {
        let clf = chaos(ChaosConfig {
            transient_rate: 1.0,
            max_burst: 3,
            ..ChaosConfig::default()
        });
        let instance = inst(7);
        let mut failures = 0;
        let value = loop {
            match clf.try_predict_proba(&instance) {
                Ok(p) => break p,
                Err(e) => {
                    assert!(e.is_retryable());
                    failures += 1;
                    assert!(failures <= 3, "burst must be bounded by max_burst");
                }
            }
        };
        assert_eq!(value, 0.75);
        assert!(failures >= 1);
        // Once passed, the instance stays healthy.
        assert_eq!(clf.try_predict_proba(&instance), Ok(0.75));
    }

    #[test]
    fn nan_faults_are_sticky() {
        let clf = chaos(ChaosConfig {
            nan_rate: 1.0,
            transient_rate: 0.0,
            ..ChaosConfig::default()
        });
        for _ in 0..3 {
            let p = clf.try_predict_proba(&inst(1)).expect("nan is an Ok value");
            assert!(p.is_nan());
        }
        assert_eq!(clf.snapshot().nan, 3);
    }

    #[test]
    fn panic_faults_are_sticky_and_counted() {
        let clf = chaos(ChaosConfig {
            panic_rate: 1.0,
            transient_rate: 0.0,
            nan_rate: 0.0,
            ..ChaosConfig::default()
        });
        for _ in 0..2 {
            let r = catch_unwind(AssertUnwindSafe(|| clf.try_predict_proba(&inst(2))));
            assert!(r.is_err());
        }
        assert_eq!(clf.snapshot().panics, 2);
    }

    #[test]
    fn rates_are_roughly_respected() {
        let clf = chaos(ChaosConfig {
            transient_rate: 0.2,
            nan_rate: 0.0,
            panic_rate: 0.0,
            latency_rate: 0.0,
            ..ChaosConfig::default()
        });
        let n = 2000;
        let mut faulted = 0;
        for x in 0..n {
            if clf.try_predict_proba(&inst(x)).is_err() {
                faulted += 1;
            }
        }
        let rate = f64::from(faulted) / f64::from(n);
        assert!((0.1..0.3).contains(&rate), "observed rate {rate}");
    }

    #[test]
    fn different_seeds_draw_different_schedules() {
        let a = chaos(ChaosConfig {
            transient_rate: 0.5,
            seed: 1,
            ..ChaosConfig::default()
        });
        let b = chaos(ChaosConfig {
            transient_rate: 0.5,
            seed: 2,
            ..ChaosConfig::default()
        });
        let diverged = (0..200).any(|x| {
            a.try_predict_proba(&inst(x)).is_ok() != b.try_predict_proba(&inst(x)).is_ok()
        });
        assert!(diverged, "seeds 1 and 2 drew identical schedules");
    }
}
