//! The black-box classifier interface.

use shahin_tabular::Feature;

/// A binary black-box classifier over tabular instances.
///
/// Everything downstream — the explainers and Shahin itself — interacts
/// with models exclusively through this trait, treating them as opaque
/// functions. Implementations must be deterministic: the same instance
/// always yields the same probability (Shahin's caching correctness
/// argument relies on this, as does the reference implementations').
pub trait Classifier: Send + Sync {
    /// Probability of the positive class for one instance.
    fn predict_proba(&self, instance: &[Feature]) -> f64;

    /// Hard label at the 0.5 threshold.
    fn predict(&self, instance: &[Feature]) -> u8 {
        u8::from(self.predict_proba(instance) >= 0.5)
    }

    /// Probabilities for a batch of instances.
    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        instances.iter().map(|i| self.predict_proba(i)).collect()
    }

    /// Probabilities for a batch packed into one flat row-major buffer:
    /// `rows` holds `rows.len() / n_attrs` instances of `n_attrs` features
    /// each, back to back. Semantically identical to
    /// [`Self::predict_proba_batch`] on the materialized rows — the flat
    /// form exists so batch producers can skip the per-row `Vec<Feature>`
    /// allocations. `n_attrs == 0` means zero rows.
    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        if n_attrs == 0 {
            return Vec::new();
        }
        debug_assert_eq!(rows.len() % n_attrs, 0, "ragged flat buffer");
        rows.chunks_exact(n_attrs)
            .map(|r| self.predict_proba(r))
            .collect()
    }
}

// The wrapper impls forward every method (not just `predict_proba`) so
// that batched fast paths like `RandomForest::predict_proba_batch` survive
// being called through `&C`, `Arc<C>`, or `Box<C>`.
impl<C: Classifier + ?Sized> Classifier for &C {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        (**self).predict_proba(instance)
    }

    fn predict(&self, instance: &[Feature]) -> u8 {
        (**self).predict(instance)
    }

    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        (**self).predict_proba_batch(instances)
    }

    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        (**self).predict_proba_flat(rows, n_attrs)
    }
}

impl<C: Classifier + ?Sized> Classifier for std::sync::Arc<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        (**self).predict_proba(instance)
    }

    fn predict(&self, instance: &[Feature]) -> u8 {
        (**self).predict(instance)
    }

    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        (**self).predict_proba_batch(instances)
    }

    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        (**self).predict_proba_flat(rows, n_attrs)
    }
}

impl<C: Classifier + ?Sized> Classifier for Box<C> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        (**self).predict_proba(instance)
    }

    fn predict(&self, instance: &[Feature]) -> u8 {
        (**self).predict(instance)
    }

    fn predict_proba_batch(&self, instances: &[Vec<Feature>]) -> Vec<f64> {
        (**self).predict_proba_batch(instances)
    }

    fn predict_proba_flat(&self, rows: &[Feature], n_attrs: usize) -> Vec<f64> {
        (**self).predict_proba_flat(rows, n_attrs)
    }
}

/// The trivial baseline: always predicts the majority class of the training
/// labels (with its empirical probability).
#[derive(Clone, Debug)]
pub struct MajorityClass {
    proba: f64,
}

impl MajorityClass {
    /// Fits on training labels.
    pub fn fit(labels: &[u8]) -> MajorityClass {
        assert!(!labels.is_empty(), "need at least one label");
        let pos: usize = labels.iter().map(|&l| usize::from(l)).sum();
        MajorityClass {
            proba: pos as f64 / labels.len() as f64,
        }
    }
}

impl Classifier for MajorityClass {
    fn predict_proba(&self, _instance: &[Feature]) -> f64 {
        self.proba
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_class_probability() {
        let m = MajorityClass::fit(&[1, 1, 1, 0]);
        assert_eq!(m.predict_proba(&[Feature::Num(0.0)]), 0.75);
        assert_eq!(m.predict(&[Feature::Num(0.0)]), 1);
        let m = MajorityClass::fit(&[0, 0, 0, 1]);
        assert_eq!(m.predict(&[Feature::Num(0.0)]), 0);
    }

    #[test]
    fn batch_matches_single() {
        let m = MajorityClass::fit(&[1, 0]);
        let batch = vec![vec![Feature::Cat(0)], vec![Feature::Cat(1)]];
        assert_eq!(m.predict_proba_batch(&batch), vec![0.5, 0.5]);
    }

    #[test]
    fn flat_buffer_matches_batch() {
        let m = MajorityClass::fit(&[1, 0]);
        let flat = vec![Feature::Cat(0), Feature::Cat(1)];
        assert_eq!(m.predict_proba_flat(&flat, 1), vec![0.5, 0.5]);
        assert_eq!(m.predict_proba_flat(&[], 0), Vec::<f64>::new());
        let by_ref: &dyn Classifier = &m;
        assert_eq!(by_ref.predict_proba_flat(&flat, 2), vec![0.5]);
    }

    #[test]
    fn trait_objects_and_wrappers_work() {
        let m = MajorityClass::fit(&[1]);
        let by_ref: &dyn Classifier = &m;
        assert_eq!(by_ref.predict(&[]), 1);
        let arced: std::sync::Arc<dyn Classifier> = std::sync::Arc::new(m.clone());
        assert_eq!(arced.predict(&[]), 1);
        let boxed: Box<dyn Classifier> = Box::new(m);
        assert_eq!(boxed.predict(&[]), 1);
    }
}
