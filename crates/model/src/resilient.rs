//! The fault-tolerant classifier boundary.
//!
//! [`FallibleClassifier`] is the fallible face of [`Classifier`]: a call
//! may fail with a typed [`PredictError`] instead of returning a bare
//! probability. Every infallible classifier is trivially fallible (the
//! blanket impl), and fault-injecting wrappers like
//! [`crate::ChaosClassifier`] implement only the fallible trait.
//!
//! [`ResilientClassifier`] closes the loop: it wraps any fallible
//! classifier and re-exposes the infallible [`Classifier`] interface the
//! explainers expect, absorbing failures with bounded retries
//! (exponential backoff + seeded jitter), per-call deadlines, a simple
//! circuit breaker, and NaN/out-of-range sanitization. Failures that
//! survive the retry budget escalate as a [`PredictError`] panic payload
//! which the batch drivers catch per tuple (quarantine, not abort).

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shahin_obs::{Counter, MetricsRegistry};
use shahin_tabular::Feature;

use crate::classifier::Classifier;
use crate::error::PredictError;

/// A classifier whose calls can fail with a typed error.
pub trait FallibleClassifier {
    /// Probability of the positive class, or a classified failure.
    fn try_predict_proba(&self, instance: &[Feature]) -> Result<f64, PredictError>;

    /// Batch form; the default stops at the first failure.
    fn try_predict_proba_batch(
        &self,
        instances: &[Vec<Feature>],
    ) -> Result<Vec<f64>, PredictError> {
        instances
            .iter()
            .map(|i| self.try_predict_proba(i))
            .collect()
    }
}

/// Every infallible classifier is a fallible one that never fails.
impl<C: Classifier> FallibleClassifier for C {
    fn try_predict_proba(&self, instance: &[Feature]) -> Result<f64, PredictError> {
        Ok(self.predict_proba(instance))
    }

    fn try_predict_proba_batch(
        &self,
        instances: &[Vec<Feature>],
    ) -> Result<Vec<f64>, PredictError> {
        Ok(self.predict_proba_batch(instances))
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Content hash of an instance: depends only on the feature values (and
/// `seed`), never on call order or thread — the anchor of every
/// reproducibility guarantee at this boundary.
pub(crate) fn instance_hash(instance: &[Feature], seed: u64) -> u64 {
    let mut h = splitmix64(seed ^ 0x7368_6168_696E_2121);
    for f in instance {
        let bits = match f {
            Feature::Cat(c) => 0x4341_5400_0000_0000 | u64::from(*c),
            Feature::Num(v) => v.to_bits(),
        };
        h = splitmix64(h ^ bits);
    }
    h
}

thread_local! {
    /// Incidents (sanitized outputs, retried calls) absorbed on this
    /// thread. Each tuple's explanation runs entirely on one worker
    /// thread, so drivers snapshot the delta around a tuple to derive its
    /// `degraded` provenance flag without any cross-thread plumbing.
    static DEGRADED_INCIDENTS: Cell<u64> = const { Cell::new(0) };
}

/// Incidents absorbed on the current thread so far (monotonic).
pub fn degraded_incidents() -> u64 {
    DEGRADED_INCIDENTS.with(Cell::get)
}

fn note_incident() {
    DEGRADED_INCIDENTS.with(|c| c.set(c.get() + 1));
}

/// Retry, deadline and circuit-breaker policy of a
/// [`ResilientClassifier`].
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries`
    /// + 1).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_backoff · 2^k` plus jitter,
    /// capped at [`RetryPolicy::max_backoff`].
    pub base_backoff: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_backoff: Duration,
    /// Per-call deadline. The boundary is synchronous, so an in-flight
    /// call cannot be cancelled: the deadline is checked *after* the call
    /// returns, classifying slow successes as retryable
    /// [`PredictError::Timeout`]s. `None` disables the check (the
    /// default — wall-clock classification is inherently nondeterministic
    /// and must be opted into).
    pub call_timeout: Option<Duration>,
    /// Consecutive failed *calls* (all attempts exhausted) that trip the
    /// breaker. `0` disables the breaker (the default: an open breaker
    /// makes outcomes order-dependent, which the determinism tests
    /// forbid).
    pub breaker_threshold: u32,
    /// Calls short-circuited while the breaker is open before a trial
    /// call is let through.
    pub breaker_cooldown: u32,
    /// Seed of the backoff jitter (mixed with the instance hash and the
    /// attempt number, so jitter is reproducible).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            call_timeout: None,
            breaker_threshold: 0,
            breaker_cooldown: 64,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Backoff for retry `attempt` (0-based) of the instance with content
    /// hash `h`: exponential base plus up to one base-unit of seeded
    /// jitter, capped.
    fn backoff(&self, h: u64, attempt: u32) -> Duration {
        let base = self.base_backoff.saturating_mul(1 << attempt.min(16));
        let jitter_unit = self.base_backoff.as_nanos().min(u128::from(u64::MAX)) as u64;
        let jitter = if jitter_unit == 0 {
            0
        } else {
            splitmix64(self.seed ^ h ^ u64::from(attempt)) % jitter_unit
        };
        (base + Duration::from_nanos(jitter)).min(self.max_backoff)
    }
}

/// Totals of everything a [`ResilientClassifier`] absorbed, for test
/// assertions and CLI summaries (mirrored into `resilience.*` counters
/// when a registry is attached).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilienceSnapshot {
    /// Retry attempts performed (beyond first attempts).
    pub retries: u64,
    /// Transient errors observed (including ones later retried away).
    pub transient_errors: u64,
    /// Deadline overruns observed.
    pub timeouts: u64,
    /// Non-probability outputs sanitized (NaN/±inf → 0.5, out-of-range
    /// clamped).
    pub invalid_proba: u64,
    /// Calls that exhausted the retry budget or hit a fatal error.
    pub giveups: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Calls short-circuited by an open breaker.
    pub breaker_short_circuits: u64,
}

#[derive(Default)]
struct ResilienceStats {
    retries: AtomicU64,
    transient_errors: AtomicU64,
    timeouts: AtomicU64,
    invalid_proba: AtomicU64,
    giveups: AtomicU64,
    breaker_opens: AtomicU64,
    breaker_short_circuits: AtomicU64,
}

/// `resilience.*` counter handles, resolved once at attach time (the
/// [`crate::TracedClassifier`] pattern).
struct ResilienceObs {
    retries: Counter,
    transient_errors: Counter,
    timeouts: Counter,
    invalid_proba: Counter,
    giveups: Counter,
    breaker_opens: Counter,
    breaker_short_circuits: Counter,
}

#[derive(Default)]
struct BreakerState {
    /// Consecutive calls (not attempts) that ended in failure.
    consecutive_failures: u32,
    /// Short-circuits remaining before a trial call is admitted.
    open_for: u32,
}

/// Wraps a [`FallibleClassifier`] and re-exposes the infallible
/// [`Classifier`] interface, absorbing failures per the [`RetryPolicy`].
///
/// Failures that cannot be absorbed (fatal errors, exhausted retry
/// budgets, open breaker) escalate via [`std::panic::panic_any`] with the
/// [`PredictError`] as payload; the batch drivers catch this per tuple
/// and quarantine the tuple instead of aborting the batch.
pub struct ResilientClassifier<F> {
    inner: F,
    policy: RetryPolicy,
    stats: ResilienceStats,
    obs: Option<ResilienceObs>,
    breaker: Mutex<BreakerState>,
}

impl<F: FallibleClassifier> ResilientClassifier<F> {
    /// Wraps `inner` under `policy`, with no metrics attached.
    pub fn new(inner: F, policy: RetryPolicy) -> ResilientClassifier<F> {
        ResilientClassifier {
            inner,
            policy,
            stats: ResilienceStats::default(),
            obs: None,
            breaker: Mutex::new(BreakerState::default()),
        }
    }

    /// Attaches a metrics registry: every absorbed event is mirrored into
    /// the `resilience.*` counters. Handles are resolved once, here.
    pub fn with_obs(mut self, registry: &MetricsRegistry) -> ResilientClassifier<F> {
        self.obs = Some(ResilienceObs {
            retries: registry.counter("resilience.retries"),
            transient_errors: registry.counter("resilience.transient_errors"),
            timeouts: registry.counter("resilience.timeouts"),
            invalid_proba: registry.counter("resilience.invalid_proba"),
            giveups: registry.counter("resilience.giveups"),
            breaker_opens: registry.counter("resilience.breaker_opens"),
            breaker_short_circuits: registry.counter("resilience.breaker_short_circuits"),
        });
        self
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// A consistent reading of everything absorbed so far.
    pub fn snapshot(&self) -> ResilienceSnapshot {
        ResilienceSnapshot {
            retries: self.stats.retries.load(Ordering::Acquire),
            transient_errors: self.stats.transient_errors.load(Ordering::Acquire),
            timeouts: self.stats.timeouts.load(Ordering::Acquire),
            invalid_proba: self.stats.invalid_proba.load(Ordering::Acquire),
            giveups: self.stats.giveups.load(Ordering::Acquire),
            breaker_opens: self.stats.breaker_opens.load(Ordering::Acquire),
            breaker_short_circuits: self.stats.breaker_short_circuits.load(Ordering::Acquire),
        }
    }

    fn count(&self, stat: &AtomicU64, handle: impl Fn(&ResilienceObs) -> &Counter) {
        stat.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            handle(obs).inc();
        }
    }

    /// One guarded attempt: catch panics out of the inner classifier
    /// (→ fatal), then classify a deadline overrun (→ timeout).
    fn attempt(&self, instance: &[Feature]) -> Result<f64, PredictError> {
        let t0 = self.policy.call_timeout.map(|_| Instant::now());
        let result = catch_unwind(AssertUnwindSafe(|| self.inner.try_predict_proba(instance)))
            .unwrap_or_else(|payload| {
                // `&*payload`: pass the payload itself, not the Box-as-Any.
                let message = payload_message(&*payload);
                Err(PredictError::Fatal {
                    message: format!("model panicked: {message}"),
                })
            })?;
        if let (Some(deadline), Some(t0)) = (self.policy.call_timeout, t0) {
            let elapsed = t0.elapsed();
            if elapsed > deadline {
                return Err(PredictError::Timeout {
                    elapsed_ms: elapsed.as_millis() as u64,
                    deadline_ms: deadline.as_millis() as u64,
                });
            }
        }
        Ok(result)
    }

    /// The full resilient call: breaker check, bounded retries with
    /// backoff, sanitization, breaker accounting.
    fn call(&self, instance: &[Feature]) -> Result<f64, PredictError> {
        if self.policy.breaker_threshold > 0 {
            let mut breaker = self.breaker.lock();
            if breaker.open_for > 0 {
                breaker.open_for -= 1;
                drop(breaker);
                self.count(&self.stats.breaker_short_circuits, |o| {
                    &o.breaker_short_circuits
                });
                return Err(PredictError::Fatal {
                    message: "circuit breaker open".into(),
                });
            }
        }
        let h = instance_hash(instance, self.policy.seed);
        let mut attempt = 0u32;
        let outcome = loop {
            match self.attempt(instance) {
                Ok(p) => break Ok(self.sanitize(p)),
                Err(e) => {
                    match &e {
                        PredictError::Transient { .. } => {
                            self.count(&self.stats.transient_errors, |o| &o.transient_errors);
                        }
                        PredictError::Timeout { .. } => {
                            self.count(&self.stats.timeouts, |o| &o.timeouts);
                        }
                        PredictError::InvalidOutput { .. } => {
                            // Inner layers that pre-classify garbage output
                            // get the same treatment as a raw NaN.
                            self.count(&self.stats.invalid_proba, |o| &o.invalid_proba);
                            note_incident();
                            break Ok(0.5);
                        }
                        PredictError::Fatal { .. } => {}
                    }
                    if !e.is_retryable() || attempt >= self.policy.max_retries {
                        self.count(&self.stats.giveups, |o| &o.giveups);
                        break Err(e);
                    }
                    std::thread::sleep(self.policy.backoff(h, attempt));
                    self.count(&self.stats.retries, |o| &o.retries);
                    note_incident();
                    attempt += 1;
                }
            }
        };
        if self.policy.breaker_threshold > 0 {
            let mut breaker = self.breaker.lock();
            match &outcome {
                Ok(_) => breaker.consecutive_failures = 0,
                Err(_) => {
                    breaker.consecutive_failures += 1;
                    if breaker.consecutive_failures >= self.policy.breaker_threshold {
                        breaker.consecutive_failures = 0;
                        breaker.open_for = self.policy.breaker_cooldown;
                        drop(breaker);
                        self.count(&self.stats.breaker_opens, |o| &o.breaker_opens);
                    }
                }
            }
        }
        outcome
    }

    /// Maps garbage outputs into valid probabilities: NaN/±inf → 0.5,
    /// out-of-range values clamped into `[0, 1]`. Either counts as a
    /// degraded incident.
    fn sanitize(&self, p: f64) -> f64 {
        if !p.is_finite() {
            self.count(&self.stats.invalid_proba, |o| &o.invalid_proba);
            note_incident();
            0.5
        } else if !(0.0..=1.0).contains(&p) {
            self.count(&self.stats.invalid_proba, |o| &o.invalid_proba);
            note_incident();
            p.clamp(0.0, 1.0)
        } else {
            p
        }
    }
}

/// Extracts a displayable message from a panic payload.
pub fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(e) = payload.downcast_ref::<PredictError>() {
        e.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

impl<F: FallibleClassifier + Send + Sync> Classifier for ResilientClassifier<F> {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        match self.call(instance) {
            Ok(p) => p,
            // Escalate with the typed error as payload; the drivers'
            // per-tuple catch_unwind recovers it for the BatchReport.
            Err(e) => std::panic::panic_any(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MajorityClass;
    use std::sync::atomic::AtomicU32;

    /// Fails with `errs[n]` on the n-th call until the script runs out,
    /// then returns `value`.
    struct Scripted {
        calls: AtomicU32,
        script: Vec<PredictError>,
        value: f64,
    }

    impl Scripted {
        fn new(script: Vec<PredictError>, value: f64) -> Scripted {
            Scripted {
                calls: AtomicU32::new(0),
                script,
                value,
            }
        }
    }

    impl FallibleClassifier for Scripted {
        fn try_predict_proba(&self, _instance: &[Feature]) -> Result<f64, PredictError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst) as usize;
            match self.script.get(n) {
                Some(e) => Err(e.clone()),
                None => Ok(self.value),
            }
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            base_backoff: Duration::from_micros(1),
            max_backoff: Duration::from_micros(10),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn infallible_classifiers_are_blanket_fallible() {
        let clf = MajorityClass::fit(&[1, 1, 0]);
        let p = clf
            .try_predict_proba(&[Feature::Cat(0)])
            .expect("never fails");
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn transient_errors_are_retried_away() {
        let script = vec![
            PredictError::Transient {
                message: "1".into(),
            },
            PredictError::Transient {
                message: "2".into(),
            },
        ];
        let clf = ResilientClassifier::new(Scripted::new(script, 0.75), fast_policy());
        assert_eq!(clf.predict_proba(&[Feature::Cat(0)]), 0.75);
        let snap = clf.snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.transient_errors, 2);
        assert_eq!(snap.giveups, 0);
    }

    #[test]
    fn retries_never_exceed_the_bound() {
        let script = vec![
            PredictError::Transient {
                message: "x".into()
            };
            100
        ];
        let inner = Scripted::new(script, 0.5);
        let clf = ResilientClassifier::new(
            inner,
            RetryPolicy {
                max_retries: 4,
                ..fast_policy()
            },
        );
        let result = catch_unwind(AssertUnwindSafe(|| clf.predict_proba(&[Feature::Cat(0)])));
        assert!(result.is_err(), "budget exhausted must escalate");
        // 1 first attempt + 4 retries.
        assert_eq!(clf.inner().calls.load(Ordering::SeqCst), 5);
        let snap = clf.snapshot();
        assert_eq!(snap.retries, 4);
        assert_eq!(snap.giveups, 1);
    }

    #[test]
    fn fatal_errors_are_never_retried() {
        let script = vec![PredictError::Fatal {
            message: "model gone".into(),
        }];
        let clf = ResilientClassifier::new(Scripted::new(script, 0.5), fast_policy());
        let result = catch_unwind(AssertUnwindSafe(|| clf.predict_proba(&[Feature::Cat(0)])));
        let payload = result.expect_err("fatal escalates");
        let err = payload
            .downcast_ref::<PredictError>()
            .expect("typed payload");
        assert_eq!(err.kind_name(), "fatal");
        assert_eq!(clf.inner().calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn nan_and_out_of_range_outputs_are_sanitized() {
        struct Garbage(f64);
        impl FallibleClassifier for Garbage {
            fn try_predict_proba(&self, _i: &[Feature]) -> Result<f64, PredictError> {
                Ok(self.0)
            }
        }
        let nan = ResilientClassifier::new(Garbage(f64::NAN), fast_policy());
        assert_eq!(nan.predict_proba(&[Feature::Cat(0)]), 0.5);
        assert_eq!(nan.snapshot().invalid_proba, 1);

        let hot = ResilientClassifier::new(Garbage(1.7), fast_policy());
        assert_eq!(hot.predict_proba(&[Feature::Cat(0)]), 1.0);
        assert_eq!(hot.snapshot().invalid_proba, 1);

        let cold = ResilientClassifier::new(Garbage(-0.2), fast_policy());
        assert_eq!(cold.predict_proba(&[Feature::Cat(0)]), 0.0);
    }

    #[test]
    fn inner_panics_become_fatal_without_retry() {
        struct Bomb;
        impl FallibleClassifier for Bomb {
            fn try_predict_proba(&self, _i: &[Feature]) -> Result<f64, PredictError> {
                panic!("inner model blew up");
            }
        }
        let clf = ResilientClassifier::new(Bomb, fast_policy());
        let payload = catch_unwind(AssertUnwindSafe(|| clf.predict_proba(&[Feature::Cat(0)])))
            .expect_err("escalates");
        let err = payload
            .downcast_ref::<PredictError>()
            .expect("typed payload");
        assert_eq!(err.kind_name(), "fatal");
        assert!(err.to_string().contains("inner model blew up"));
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_short_circuits() {
        struct AlwaysDown;
        impl FallibleClassifier for AlwaysDown {
            fn try_predict_proba(&self, _i: &[Feature]) -> Result<f64, PredictError> {
                Err(PredictError::Fatal {
                    message: "down".into(),
                })
            }
        }
        let clf = ResilientClassifier::new(
            AlwaysDown,
            RetryPolicy {
                breaker_threshold: 2,
                breaker_cooldown: 3,
                ..fast_policy()
            },
        );
        for _ in 0..6 {
            let _ = catch_unwind(AssertUnwindSafe(|| clf.predict_proba(&[Feature::Cat(0)])));
        }
        let snap = clf.snapshot();
        assert_eq!(snap.breaker_opens, 1);
        assert_eq!(snap.breaker_short_circuits, 3);
        // Short-circuited calls never reach the inner model: 6 calls, 3
        // short-circuited, 3 real.
        assert_eq!(snap.giveups, 3);
    }

    #[test]
    fn degraded_incidents_advance_on_sanitization_and_retries() {
        struct Nan;
        impl FallibleClassifier for Nan {
            fn try_predict_proba(&self, _i: &[Feature]) -> Result<f64, PredictError> {
                Ok(f64::NAN)
            }
        }
        let before = degraded_incidents();
        let clf = ResilientClassifier::new(Nan, fast_policy());
        clf.predict_proba(&[Feature::Cat(0)]);
        assert_eq!(degraded_incidents(), before + 1);
    }

    #[test]
    fn backoff_is_bounded_and_reproducible() {
        let policy = fast_policy();
        let a = policy.backoff(42, 3);
        let b = policy.backoff(42, 3);
        assert_eq!(a, b, "same hash + attempt ⇒ same jitter");
        assert!(a <= policy.max_backoff);
    }

    #[test]
    fn obs_mirrors_counters() {
        let reg = MetricsRegistry::new();
        let script = vec![PredictError::Transient {
            message: "x".into(),
        }];
        let clf =
            ResilientClassifier::new(Scripted::new(script, 0.5), fast_policy()).with_obs(&reg);
        clf.predict_proba(&[Feature::Cat(0)]);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("resilience.retries"), Some(&1));
        assert_eq!(snap.counters.get("resilience.transient_errors"), Some(&1));
    }
}
