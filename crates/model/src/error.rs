//! Typed errors at the classifier boundary.
//!
//! The explainers assume an infallible black box, but in production the
//! model server is the one component the pipeline does not control. A
//! failed call falls into one of four buckets with different handling:
//! transient and timeout failures are retryable, invalid output is
//! sanitizable, and fatal failures must quarantine the tuple without
//! taking the batch down with it.

use std::fmt;

/// A classified failure of a single `predict_proba` call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PredictError {
    /// A transient failure (connection reset, 5xx, queue-full): safe to
    /// retry after a backoff.
    Transient {
        /// Human-readable cause.
        message: String,
    },
    /// The call exceeded its deadline. Retryable: the next attempt may
    /// land on a healthy replica.
    Timeout {
        /// Elapsed time in milliseconds when the deadline fired.
        elapsed_ms: u64,
        /// The configured deadline in milliseconds.
        deadline_ms: u64,
    },
    /// The model returned a value that is not a probability (NaN, ±inf,
    /// outside `[0, 1]`). Not retryable — the same input yields the same
    /// garbage — but sanitizable.
    InvalidOutput {
        /// The offending raw value, formatted (NaN survives formatting).
        raw: String,
    },
    /// An unrecoverable failure (panic inside the model, circuit breaker
    /// open, retry budget exhausted). Never retried.
    Fatal {
        /// Human-readable cause.
        message: String,
    },
}

impl PredictError {
    /// Whether a retry can plausibly succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            PredictError::Transient { .. } | PredictError::Timeout { .. }
        )
    }

    /// The taxonomy bucket as a stable lowercase name (used in metrics
    /// and failure reports).
    pub fn kind_name(&self) -> &'static str {
        match self {
            PredictError::Transient { .. } => "transient",
            PredictError::Timeout { .. } => "timeout",
            PredictError::InvalidOutput { .. } => "invalid_output",
            PredictError::Fatal { .. } => "fatal",
        }
    }
}

impl fmt::Display for PredictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictError::Transient { message } => write!(f, "transient failure: {message}"),
            PredictError::Timeout {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "call exceeded deadline: {elapsed_ms}ms > {deadline_ms}ms"
            ),
            PredictError::InvalidOutput { raw } => {
                write!(f, "model returned a non-probability: {raw}")
            }
            PredictError::Fatal { message } => write!(f, "fatal failure: {message}"),
        }
    }
}

impl std::error::Error for PredictError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_the_taxonomy() {
        assert!(PredictError::Transient {
            message: "reset".into()
        }
        .is_retryable());
        assert!(PredictError::Timeout {
            elapsed_ms: 120,
            deadline_ms: 100
        }
        .is_retryable());
        assert!(!PredictError::InvalidOutput { raw: "NaN".into() }.is_retryable());
        assert!(!PredictError::Fatal {
            message: "panic".into()
        }
        .is_retryable());
    }

    #[test]
    fn kind_names_are_stable() {
        let errs = [
            PredictError::Transient { message: "".into() },
            PredictError::Timeout {
                elapsed_ms: 0,
                deadline_ms: 0,
            },
            PredictError::InvalidOutput { raw: "".into() },
            PredictError::Fatal { message: "".into() },
        ];
        let names: Vec<_> = errs.iter().map(PredictError::kind_name).collect();
        assert_eq!(names, ["transient", "timeout", "invalid_output", "fatal"]);
    }

    #[test]
    fn display_mentions_the_cause() {
        let e = PredictError::Timeout {
            elapsed_ms: 250,
            deadline_ms: 100,
        };
        assert!(e.to_string().contains("250ms"));
    }
}
