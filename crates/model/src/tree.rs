//! CART decision trees with Gini impurity.

use rand::seq::SliceRandom;
use rand::Rng;

use shahin_tabular::{Column, Dataset, Feature};

use crate::classifier::Classifier;

/// Decision tree hyperparameters.
#[derive(Clone, Debug)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of attributes considered per split; `0` means all.
    /// Random Forests pass `⌊√m⌋`.
    pub max_features: usize,
    /// Cap on candidate thresholds per numeric attribute (quantile-spaced).
    pub max_numeric_candidates: usize,
    /// Cap on candidate codes per categorical attribute (most frequent in
    /// the node first).
    pub max_categorical_candidates: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 4,
            max_features: 0,
            max_numeric_candidates: 16,
            max_categorical_candidates: 32,
        }
    }
}

/// Arena-allocated tree node. Crate-visible so [`crate::flat::FlatForest`]
/// can re-pack fitted trees into its contiguous arrays.
#[derive(Clone, Debug)]
pub(crate) enum Node {
    Leaf {
        proba: f64,
    },
    /// `value < threshold` goes left.
    SplitNum {
        attr: u32,
        threshold: f64,
        left: u32,
        right: u32,
    },
    /// `value == code` goes left.
    SplitCat {
        attr: u32,
        code: u32,
        left: u32,
        right: u32,
    },
}

/// A trained CART binary classifier.
#[derive(Clone, Debug)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

/// Gini impurity of a binary split, weighted by side sizes; lower is
/// better. `(pos, n)` per side.
fn weighted_gini(pos_l: f64, n_l: f64, pos_r: f64, n_r: f64) -> f64 {
    let gini = |pos: f64, n: f64| {
        if n == 0.0 {
            0.0
        } else {
            let p = pos / n;
            2.0 * p * (1.0 - p)
        }
    };
    let n = n_l + n_r;
    (n_l / n) * gini(pos_l, n_l) + (n_r / n) * gini(pos_r, n_r)
}

struct Builder<'a> {
    data: &'a Dataset,
    labels: &'a [u8],
    params: &'a TreeParams,
    nodes: Vec<Node>,
}

impl Builder<'_> {
    fn leaf(&mut self, rows: &[u32]) -> u32 {
        let pos: u32 = rows
            .iter()
            .map(|&r| u32::from(self.labels[r as usize]))
            .sum();
        let proba = pos as f64 / rows.len() as f64;
        self.nodes.push(Node::Leaf { proba });
        (self.nodes.len() - 1) as u32
    }

    fn build(&mut self, rows: &mut Vec<u32>, depth: usize, rng: &mut impl Rng) -> u32 {
        let pos: usize = rows
            .iter()
            .map(|&r| usize::from(self.labels[r as usize]))
            .sum();
        if depth >= self.params.max_depth
            || rows.len() < self.params.min_samples_split
            || pos == 0
            || pos == rows.len()
        {
            return self.leaf(rows);
        }

        // Attribute subset for this split.
        let m = self.data.n_attrs();
        let k = if self.params.max_features == 0 {
            m
        } else {
            self.params.max_features.min(m)
        };
        let mut attrs: Vec<usize> = (0..m).collect();
        if k < m {
            attrs.shuffle(rng);
            attrs.truncate(k);
        }

        let mut best: Option<(f64, Split)> = None;
        for &attr in &attrs {
            if let Some((score, split)) = self.best_split_on(attr, rows) {
                if best.as_ref().is_none_or(|(b, _)| score < *b) {
                    best = Some((score, split));
                }
            }
        }
        let Some((score, split)) = best else {
            return self.leaf(rows);
        };
        // No gain over the unsplit node: stop.
        let parent_gini = weighted_gini(pos as f64, rows.len() as f64, 0.0, 0.0);
        if score >= parent_gini - 1e-12 {
            return self.leaf(rows);
        }

        let (mut left_rows, mut right_rows): (Vec<u32>, Vec<u32>) = match split {
            Split::Num { attr, threshold } => {
                let Column::Num(col) = self.data.column(attr as usize) else {
                    unreachable!()
                };
                rows.iter().partition(|&&r| col[r as usize] < threshold)
            }
            Split::Cat { attr, code } => {
                let Column::Cat(col) = self.data.column(attr as usize) else {
                    unreachable!()
                };
                rows.iter().partition(|&&r| col[r as usize] == code)
            }
        };
        if left_rows.is_empty() || right_rows.is_empty() {
            return self.leaf(rows);
        }
        rows.clear();
        rows.shrink_to_fit();

        // Reserve this node's slot before recursing so children follow it.
        self.nodes.push(Node::Leaf { proba: 0.0 });
        let idx = (self.nodes.len() - 1) as u32;
        let left = self.build(&mut left_rows, depth + 1, rng);
        let right = self.build(&mut right_rows, depth + 1, rng);
        self.nodes[idx as usize] = match split {
            Split::Num { attr, threshold } => Node::SplitNum {
                attr,
                threshold,
                left,
                right,
            },
            Split::Cat { attr, code } => Node::SplitCat {
                attr,
                code,
                left,
                right,
            },
        };
        idx
    }

    /// Best (lowest weighted Gini) split on one attribute over `rows`.
    fn best_split_on(&self, attr: usize, rows: &[u32]) -> Option<(f64, Split)> {
        match self.data.column(attr) {
            Column::Num(col) => {
                let mut vals: Vec<(f64, u8)> = rows
                    .iter()
                    .map(|&r| (col[r as usize], self.labels[r as usize]))
                    .collect();
                vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN feature"));
                let total_pos: f64 = vals.iter().map(|&(_, l)| f64::from(l)).sum();
                let n = vals.len() as f64;
                // Candidate cut positions at quantile-spaced boundaries
                // between distinct values.
                let cap = self.params.max_numeric_candidates.max(1);
                let step = (vals.len() / (cap + 1)).max(1);
                let mut best: Option<(f64, Split)> = None;
                let mut pos_l = 0.0;
                let mut n_l = 0.0;
                let mut next_check = step;
                for i in 0..vals.len() - 1 {
                    pos_l += f64::from(vals[i].1);
                    n_l += 1.0;
                    if i + 1 < next_check {
                        continue;
                    }
                    next_check += step;
                    if vals[i].0 == vals[i + 1].0 {
                        continue; // not a valid cut
                    }
                    let score = weighted_gini(pos_l, n_l, total_pos - pos_l, n - n_l);
                    if best.as_ref().is_none_or(|(b, _)| score < *b) {
                        let threshold = 0.5 * (vals[i].0 + vals[i + 1].0);
                        best = Some((
                            score,
                            Split::Num {
                                attr: attr as u32,
                                threshold,
                            },
                        ));
                    }
                }
                best
            }
            Column::Cat(col) => {
                // Count (n, pos) per code present in the node.
                let mut counts: Vec<(u32, f64, f64)> = Vec::new(); // (code, n, pos)
                for &r in rows {
                    let code = col[r as usize];
                    match counts.iter_mut().find(|c| c.0 == code) {
                        Some(c) => {
                            c.1 += 1.0;
                            c.2 += f64::from(self.labels[r as usize]);
                        }
                        None => counts.push((code, 1.0, f64::from(self.labels[r as usize]))),
                    }
                }
                if counts.len() < 2 {
                    return None;
                }
                counts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite counts"));
                counts.truncate(self.params.max_categorical_candidates.max(1));
                let n: f64 = rows.len() as f64;
                let total_pos: f64 = rows
                    .iter()
                    .map(|&r| f64::from(self.labels[r as usize]))
                    .sum();
                counts
                    .iter()
                    .map(|&(code, n_l, pos_l)| {
                        let score = weighted_gini(pos_l, n_l, total_pos - pos_l, n - n_l);
                        (
                            score,
                            Split::Cat {
                                attr: attr as u32,
                                code,
                            },
                        )
                    })
                    .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"))
            }
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Split {
    Num { attr: u32, threshold: f64 },
    Cat { attr: u32, code: u32 },
}

impl DecisionTree {
    /// Trains a tree on the full dataset.
    pub fn fit(
        data: &Dataset,
        labels: &[u8],
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> DecisionTree {
        let rows: Vec<u32> = (0..data.n_rows() as u32).collect();
        DecisionTree::fit_on_rows(data, labels, rows, params, rng)
    }

    /// Trains a tree on a row subset (used by the forest's bootstrap).
    pub fn fit_on_rows(
        data: &Dataset,
        labels: &[u8],
        mut rows: Vec<u32>,
        params: &TreeParams,
        rng: &mut impl Rng,
    ) -> DecisionTree {
        assert_eq!(data.n_rows(), labels.len(), "label count mismatch");
        assert!(!rows.is_empty(), "cannot train on zero rows");
        let mut builder = Builder {
            data,
            labels,
            params,
            nodes: Vec::new(),
        };
        builder.build(&mut rows, 0, rng);
        DecisionTree {
            nodes: builder.nodes,
        }
    }

    /// Number of nodes (for size diagnostics).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The node arena (root at index 0), for flattening.
    #[inline]
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Tree depth.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: u32) -> usize {
            match nodes[idx as usize] {
                Node::Leaf { .. } => 1,
                Node::SplitNum { left, right, .. } | Node::SplitCat { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        depth_of(&self.nodes, 0)
    }
}

impl Classifier for DecisionTree {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let mut idx = 0u32;
        loop {
            match self.nodes[idx as usize] {
                Node::Leaf { proba } => return proba,
                Node::SplitNum {
                    attr,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if instance[attr as usize].num() < threshold {
                        left
                    } else {
                        right
                    };
                }
                Node::SplitCat {
                    attr,
                    code,
                    left,
                    right,
                } => {
                    idx = if instance[attr as usize].cat() == code {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_tabular::{Attribute, Schema};
    use std::sync::Arc;

    fn numeric_xor_like() -> (Dataset, Vec<u8>) {
        // label = x > 0.5
        let schema = Arc::new(Schema::new(vec![Attribute::numeric("x")]));
        let values: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let labels: Vec<u8> = values.iter().map(|&v| u8::from(v > 0.5)).collect();
        (Dataset::new(schema, vec![Column::Num(values)]), labels)
    }

    fn categorical_concept() -> (Dataset, Vec<u8>) {
        // label = (c == 2)
        let schema = Arc::new(Schema::new(vec![Attribute::categorical("c", 4)]));
        let codes: Vec<u32> = (0..200).map(|i| (i % 4) as u32).collect();
        let labels: Vec<u8> = codes.iter().map(|&c| u8::from(c == 2)).collect();
        (Dataset::new(schema, vec![Column::Cat(codes)]), labels)
    }

    #[test]
    fn learns_numeric_threshold() {
        let (d, l) = numeric_xor_like();
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::fit(&d, &l, &TreeParams::default(), &mut rng);
        for (i, v) in [(0, 0.1), (1, 0.9), (0, 0.4), (1, 0.6)] {
            assert_eq!(t.predict(&[Feature::Num(v)]), i, "value {v}");
        }
    }

    #[test]
    fn learns_categorical_equality() {
        let (d, l) = categorical_concept();
        let mut rng = StdRng::seed_from_u64(1);
        let t = DecisionTree::fit(&d, &l, &TreeParams::default(), &mut rng);
        for c in 0..4u32 {
            assert_eq!(t.predict(&[Feature::Cat(c)]), u8::from(c == 2), "code {c}");
        }
    }

    #[test]
    fn learns_two_attribute_and_concept() {
        // label = (c == 1) AND (x > 0.5)
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("c", 3),
            Attribute::numeric("x"),
        ]));
        let mut rng = StdRng::seed_from_u64(2);
        let codes: Vec<u32> = (0..600).map(|_| rng.gen_range(0..3)).collect();
        let values: Vec<f64> = (0..600).map(|_| rng.gen::<f64>()).collect();
        let labels: Vec<u8> = codes
            .iter()
            .zip(&values)
            .map(|(&c, &v)| u8::from(c == 1 && v > 0.5))
            .collect();
        let d = Dataset::new(schema, vec![Column::Cat(codes), Column::Num(values)]);
        let t = DecisionTree::fit(&d, &labels, &TreeParams::default(), &mut rng);
        assert_eq!(t.predict(&[Feature::Cat(1), Feature::Num(0.9)]), 1);
        assert_eq!(t.predict(&[Feature::Cat(1), Feature::Num(0.1)]), 0);
        assert_eq!(t.predict(&[Feature::Cat(0), Feature::Num(0.9)]), 0);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let (d, _) = numeric_xor_like();
        let l = vec![1u8; d.n_rows()];
        let mut rng = StdRng::seed_from_u64(3);
        let t = DecisionTree::fit(&d, &l, &TreeParams::default(), &mut rng);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict_proba(&[Feature::Num(0.3)]), 1.0);
    }

    #[test]
    fn max_depth_limits_tree() {
        let (d, l) = numeric_xor_like();
        let mut rng = StdRng::seed_from_u64(4);
        let params = TreeParams {
            max_depth: 2,
            ..Default::default()
        };
        let t = DecisionTree::fit(&d, &l, &params, &mut rng);
        assert!(t.depth() <= 3, "depth {}", t.depth());
    }

    #[test]
    fn deterministic_under_seed() {
        let (d, l) = categorical_concept();
        let t1 = DecisionTree::fit(
            &d,
            &l,
            &TreeParams::default(),
            &mut StdRng::seed_from_u64(7),
        );
        let t2 = DecisionTree::fit(
            &d,
            &l,
            &TreeParams::default(),
            &mut StdRng::seed_from_u64(7),
        );
        for c in 0..4u32 {
            assert_eq!(
                t1.predict_proba(&[Feature::Cat(c)]),
                t2.predict_proba(&[Feature::Cat(c)])
            );
        }
    }

    #[test]
    fn gini_prefers_clean_split() {
        let dirty = weighted_gini(5.0, 10.0, 5.0, 10.0);
        let clean = weighted_gini(10.0, 10.0, 0.0, 10.0);
        assert!(clean < dirty);
        assert_eq!(clean, 0.0);
    }
}
