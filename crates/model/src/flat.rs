//! CSR-flattened forests: contiguous struct-of-arrays tree storage.
//!
//! A fitted [`crate::RandomForest`] stores each tree as its own
//! `Vec<Node>` of 32-byte enum variants — every prediction hops between
//! per-tree allocations and pattern-matches an enum per node. For the
//! batch workloads Shahin runs (millions of invocations per explanation
//! batch), that layout is memory-bound: the working set is scattered and
//! each node touch loads fields the branch never reads.
//!
//! [`FlatForest`] re-packs the whole forest once, at fit time, into six
//! contiguous arrays in the CSR `first_out`/`head` idiom:
//!
//! ```text
//! first_out  : [u32; n_trees + 1]   tree t's nodes live at first_out[t]..first_out[t+1]
//! feature    : [u32; n_nodes]       LEAF sentinel | CAT_BIT-flagged attr | numeric attr
//! threshold  : [f64; n_nodes]       numeric cut, or the categorical code as f64
//! left,right : [u32; n_nodes]       absolute child indices (pre-offset by the tree base)
//! leaf_value : [f64; n_nodes]       leaf probability (0.0 on interior nodes)
//! ```
//!
//! Traversal reads exactly two cache-line-friendly lanes per step
//! (`feature[idx]`, `threshold[idx]`) plus one child index, with no enum
//! discriminant and no per-tree pointer chase. The categorical code is
//! stored as `f64::from(code)` — `u32 → f64` is exact, so `f64` equality
//! against the instance's code is equivalent to the nested layout's `u32`
//! equality and predictions stay **bit-identical** (same trees, same
//! visit order, same `sum / n` reduction).

use shahin_tabular::Feature;

use crate::tree::{DecisionTree, Node};

/// `feature` sentinel marking a leaf node.
const LEAF: u32 = u32::MAX;
/// `feature` flag marking a categorical (one-vs-rest equality) split.
const CAT_BIT: u32 = 1 << 31;

/// A whole random forest flattened into contiguous arrays.
///
/// Built once from fitted [`DecisionTree`]s; see the module docs for the
/// memory map. All `predict*` entry points reproduce the nested layout's
/// outputs bit for bit.
#[derive(Clone, Debug)]
pub struct FlatForest {
    /// CSR offsets: tree `t` owns nodes `first_out[t]..first_out[t + 1]`,
    /// its root at `first_out[t]`.
    first_out: Vec<u32>,
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    leaf_value: Vec<f64>,
}

impl FlatForest {
    /// Flattens fitted trees. Node ids are the tree's arena order shifted
    /// by the tree's base offset, so child indices need no per-tree base
    /// at traversal time.
    pub(crate) fn from_trees(trees: &[DecisionTree]) -> FlatForest {
        let n_nodes: usize = trees.iter().map(DecisionTree::n_nodes).sum();
        let mut flat = FlatForest {
            first_out: Vec::with_capacity(trees.len() + 1),
            feature: Vec::with_capacity(n_nodes),
            threshold: Vec::with_capacity(n_nodes),
            left: Vec::with_capacity(n_nodes),
            right: Vec::with_capacity(n_nodes),
            leaf_value: Vec::with_capacity(n_nodes),
        };
        flat.first_out.push(0);
        for tree in trees {
            let base = *flat.first_out.last().expect("first_out starts at 0");
            for node in tree.nodes() {
                match *node {
                    Node::Leaf { proba } => {
                        flat.feature.push(LEAF);
                        flat.threshold.push(0.0);
                        flat.left.push(0);
                        flat.right.push(0);
                        flat.leaf_value.push(proba);
                    }
                    Node::SplitNum {
                        attr,
                        threshold,
                        left,
                        right,
                    } => {
                        assert!(attr & CAT_BIT == 0, "attribute index overflows CAT_BIT");
                        flat.feature.push(attr);
                        flat.threshold.push(threshold);
                        flat.left.push(base + left);
                        flat.right.push(base + right);
                        flat.leaf_value.push(0.0);
                    }
                    Node::SplitCat {
                        attr,
                        code,
                        left,
                        right,
                    } => {
                        assert!(attr & CAT_BIT == 0, "attribute index overflows CAT_BIT");
                        flat.feature.push(attr | CAT_BIT);
                        // u32 → f64 is exact, so f64 equality below is
                        // equivalent to the nested layout's u32 equality.
                        flat.threshold.push(f64::from(code));
                        flat.left.push(base + left);
                        flat.right.push(base + right);
                        flat.leaf_value.push(0.0);
                    }
                }
            }
            let end = u32::try_from(flat.feature.len()).expect("node count fits in u32");
            flat.first_out.push(end);
        }
        flat
    }

    /// Number of trees.
    #[inline]
    pub fn n_trees(&self) -> usize {
        self.first_out.len() - 1
    }

    /// Total node count across all trees.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Walks one tree (by its root node index) for one row.
    #[inline]
    fn walk(&self, root: u32, row: &[Feature]) -> f64 {
        let mut idx = root as usize;
        loop {
            let f = self.feature[idx];
            if f == LEAF {
                return self.leaf_value[idx];
            }
            let attr = (f & !CAT_BIT) as usize;
            let go_left = if f & CAT_BIT != 0 {
                f64::from(row[attr].cat()) == self.threshold[idx]
            } else {
                row[attr].num() < self.threshold[idx]
            };
            idx = if go_left {
                self.left[idx]
            } else {
                self.right[idx]
            } as usize;
        }
    }

    /// Mean leaf probability across all trees for one row — bit-identical
    /// to averaging the nested trees' `predict_proba` outputs.
    pub fn predict_proba(&self, row: &[Feature]) -> f64 {
        let mut sum = 0.0;
        for &root in &self.first_out[..self.n_trees()] {
            sum += self.walk(root, row);
        }
        sum / self.n_trees() as f64
    }

    /// Sums every tree's probability into `out[i]` for row `i` of the flat
    /// row-major buffer, then divides by the tree count. Tree-outer /
    /// row-inner, so one tree's arrays stay hot across the whole chunk;
    /// the division (not a reciprocal multiply) keeps each row's result
    /// bit-identical to [`Self::predict_proba`].
    pub fn predict_chunk(&self, rows: &[Feature], n_attrs: usize, out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len() * n_attrs, "ragged flat chunk");
        for &root in &self.first_out[..self.n_trees()] {
            for (sum, row) in out.iter_mut().zip(rows.chunks_exact(n_attrs)) {
                *sum += self.walk(root, row);
            }
        }
        let n = self.n_trees() as f64;
        for sum in out.iter_mut() {
            *sum /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Classifier;
    use crate::tree::TreeParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_tabular::{DatasetPreset, Instance};

    fn fitted_trees(n: usize) -> (Vec<DecisionTree>, Vec<Instance>) {
        let spec = DatasetPreset::Recidivism.spec(0.03);
        let (data, labels) = spec.generate(11);
        let mut rng = StdRng::seed_from_u64(21);
        let trees = (0..n)
            .map(|_| DecisionTree::fit(&data, &labels, &TreeParams::default(), &mut rng))
            .collect();
        let rows = (0..64.min(data.n_rows()))
            .map(|r| data.instance(r))
            .collect();
        (trees, rows)
    }

    #[test]
    fn csr_offsets_partition_the_arena() {
        let (trees, _) = fitted_trees(4);
        let flat = FlatForest::from_trees(&trees);
        assert_eq!(flat.n_trees(), 4);
        assert_eq!(
            flat.n_nodes(),
            trees.iter().map(DecisionTree::n_nodes).sum::<usize>()
        );
        for (t, tree) in trees.iter().enumerate() {
            let span = flat.first_out[t + 1] - flat.first_out[t];
            assert_eq!(span as usize, tree.n_nodes(), "tree {t}");
        }
    }

    #[test]
    fn flat_walk_is_bit_identical_to_nested_trees() {
        let (trees, rows) = fitted_trees(5);
        let flat = FlatForest::from_trees(&trees);
        for row in &rows {
            let nested: f64 =
                trees.iter().map(|t| t.predict_proba(row)).sum::<f64>() / trees.len() as f64;
            assert_eq!(flat.predict_proba(row), nested);
            for (t, tree) in trees.iter().enumerate() {
                assert_eq!(
                    flat.walk(flat.first_out[t], row),
                    tree.predict_proba(row),
                    "tree {t}"
                );
            }
        }
    }

    #[test]
    fn chunk_matches_per_row() {
        let (trees, rows) = fitted_trees(3);
        let flat = FlatForest::from_trees(&trees);
        let n_attrs = rows[0].len();
        let buf: Vec<Feature> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        let mut out = vec![0.0; rows.len()];
        flat.predict_chunk(&buf, n_attrs, &mut out);
        for (row, got) in rows.iter().zip(&out) {
            assert_eq!(*got, flat.predict_proba(row));
        }
    }
}
