//! Logistic regression over one-hot encoded features.
//!
//! A secondary black box: the paper runs its experiments on a Random
//! Forest but argues the conclusions transfer because Shahin's speedup
//! comes from *fewer invocations* regardless of the model (§4.1). Having a
//! second, very different model lets us test that claim.

use rand::Rng;

use shahin_tabular::{AttrKind, Column, Dataset, Feature, Schema};

use crate::classifier::Classifier;

/// One-hot + standardized-numeric encoder shared by fit and predict.
#[derive(Clone, Debug)]
struct Encoder {
    /// Start offset of each attribute in the encoded vector.
    offsets: Vec<usize>,
    /// (mean, std) per numeric attribute index; dummy for categorical.
    norms: Vec<(f64, f64)>,
    width: usize,
}

impl Encoder {
    fn fit(data: &Dataset) -> Encoder {
        let schema: &Schema = data.schema();
        let mut offsets = Vec::with_capacity(schema.len());
        let mut norms = Vec::with_capacity(schema.len());
        let mut width = 0usize;
        for attr in 0..schema.len() {
            offsets.push(width);
            match &schema.attr(attr).kind {
                AttrKind::Categorical { cardinality } => {
                    width += *cardinality as usize;
                    norms.push((0.0, 1.0));
                }
                AttrKind::Numeric => {
                    let Column::Num(values) = data.column(attr) else {
                        unreachable!()
                    };
                    let n = values.len() as f64;
                    let mean = values.iter().sum::<f64>() / n;
                    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
                    norms.push((mean, var.sqrt().max(1e-9)));
                    width += 1;
                }
            }
        }
        Encoder {
            offsets,
            norms,
            width,
        }
    }

    fn encode(&self, instance: &[Feature], out: &mut [f64]) {
        out.fill(0.0);
        for (attr, &feat) in instance.iter().enumerate() {
            let off = self.offsets[attr];
            match feat {
                Feature::Cat(code) => out[off + code as usize] = 1.0,
                Feature::Num(v) => {
                    let (mean, std) = self.norms[attr];
                    out[off] = (v - mean) / std;
                }
            }
        }
    }
}

/// L2-regularized logistic regression trained by mini-batch SGD.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    encoder: Encoder,
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Trains with `epochs` passes of SGD at learning rate `lr` and L2
    /// penalty `l2`.
    pub fn fit(
        data: &Dataset,
        labels: &[u8],
        epochs: usize,
        lr: f64,
        l2: f64,
        rng: &mut impl Rng,
    ) -> LogisticRegression {
        assert_eq!(data.n_rows(), labels.len(), "label count mismatch");
        assert!(data.n_rows() > 0, "need training data");
        let encoder = Encoder::fit(data);
        let mut weights = vec![0.0; encoder.width];
        let mut bias = 0.0;
        let mut x = vec![0.0; encoder.width];
        let n = data.n_rows();
        for _ in 0..epochs {
            for _ in 0..n {
                let r = rng.gen_range(0..n);
                encoder.encode(&data.instance(r), &mut x);
                let z: f64 = bias + weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>();
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - f64::from(labels[r]);
                for (w, &v) in weights.iter_mut().zip(&x) {
                    *w -= lr * (err * v + l2 * *w);
                }
                bias -= lr * err;
            }
        }
        LogisticRegression {
            encoder,
            weights,
            bias,
        }
    }
}

impl Classifier for LogisticRegression {
    fn predict_proba(&self, instance: &[Feature]) -> f64 {
        let mut x = vec![0.0; self.encoder.width];
        self.encoder.encode(instance, &mut x);
        let z: f64 = self.bias + self.weights.iter().zip(&x).map(|(w, v)| w * v).sum::<f64>();
        1.0 / (1.0 + (-z).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use shahin_tabular::{Attribute, Schema};
    use std::sync::Arc;

    fn linear_concept(n: usize, seed: u64) -> (Dataset, Vec<u8>) {
        // label = (x > 0) XOR-free linear concept plus a predictive category.
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("c", 3),
            Attribute::numeric("x"),
        ]));
        let codes: Vec<u32> = (0..n).map(|_| rng.gen_range(0..3)).collect();
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let labels: Vec<u8> = codes
            .iter()
            .zip(&values)
            .map(|(&c, &v)| u8::from(v + f64::from(c) - 1.0 > 0.0))
            .collect();
        (
            Dataset::new(schema, vec![Column::Cat(codes), Column::Num(values)]),
            labels,
        )
    }

    #[test]
    fn learns_linear_concept() {
        let (data, labels) = linear_concept(2000, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let model = LogisticRegression::fit(&data, &labels, 5, 0.1, 1e-4, &mut rng);
        let preds: Vec<u8> = (0..data.n_rows())
            .map(|r| model.predict(&data.instance(r)))
            .collect();
        let acc = accuracy(&preds, &labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (data, labels) = linear_concept(500, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let model = LogisticRegression::fit(&data, &labels, 2, 0.1, 1e-4, &mut rng);
        for r in 0..50 {
            let p = model.predict_proba(&data.instance(r));
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn deterministic_predictions() {
        let (data, labels) = linear_concept(300, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let model = LogisticRegression::fit(&data, &labels, 2, 0.1, 1e-4, &mut rng);
        let inst = data.instance(0);
        assert_eq!(model.predict_proba(&inst), model.predict_proba(&inst));
    }
}
