//! Multi-tenant end-to-end tests over real TCP: requests route by their
//! `tenant` field, tenants materialize lazily (counted cold starts),
//! quotas answer 429 with the tenant named, and idle eviction followed
//! by snapshot-hydrated re-admission serves bit-identical explanations
//! at 1 and 4 workers.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use shahin::obs::names;
use shahin::{BatchConfig, MetricsRegistry, ShahinBatch, WarmEngine, WarmExplainer};
use shahin_explain::{ExplainContext, FeatureWeights, LimeExplainer, LimeParams};
use shahin_model::{CountingClassifier, MajorityClass};
use shahin_obs::json::Json;
use shahin_serve::{ServeConfig, Server, ServerHandle};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};
use shahin_tenancy::{LifecyclePolicy, TenantConfig, TenantRegistry};

const SEED: u64 = 11;
const WARM_ROWS: usize = 8;

fn lime() -> LimeExplainer {
    LimeExplainer::new(LimeParams {
        n_samples: 60,
        ..Default::default()
    })
}

/// The pieces a tenant's engine is built from — shared between the
/// serving factory and the offline driver the served output is
/// compared against.
fn tenant_parts(preset: DatasetPreset) -> (ExplainContext, MajorityClass, Dataset) {
    let (data, labels) = preset.spec(0.05).generate(5);
    let mut rng = StdRng::seed_from_u64(5);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
    let inner = MajorityClass::fit(&split.train_labels);
    let rows: Vec<usize> = (0..WARM_ROWS.min(split.test.n_rows())).collect();
    let warm = split.test.select(&rows);
    (ctx, inner, warm)
}

/// Declares one tenant over a small preset-derived warm set. The
/// factory re-materializes the tenant on every cold start — a fresh
/// counting wrapper each time, so an engine's invocation count is its
/// own — and hydrates classifier-free when handed readable snapshot
/// bytes.
fn tenant_config(
    name: &str,
    preset: DatasetPreset,
    quota: Option<usize>,
    snapshot_path: Option<PathBuf>,
    n_workers: usize,
) -> TenantConfig<MajorityClass> {
    let (ctx, inner, warm) = tenant_parts(preset);
    let n_rows = warm.n_rows();
    let reg = MetricsRegistry::new();
    TenantConfig {
        name: name.to_string(),
        n_rows,
        quota,
        snapshot_path,
        warm_from: None,
        factory: Box::new(move |bytes| {
            WarmEngine::prime_warm_or_cold(
                BatchConfig {
                    n_threads: Some(n_workers),
                    ..Default::default()
                },
                WarmExplainer::Lime(lime()),
                ctx.clone(),
                CountingClassifier::new(inner.clone()),
                warm.clone(),
                SEED,
                &reg,
                bytes,
            )
        }),
    }
}

fn start_cluster(
    configs: Vec<TenantConfig<MajorityClass>>,
    policy: LifecyclePolicy,
) -> (ServerHandle<MajorityClass>, MetricsRegistry) {
    let obs = MetricsRegistry::new();
    let cluster = Arc::new(TenantRegistry::new(configs, 0, policy, &obs));
    let handle = Server::start_cluster(
        cluster,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            poll_interval: Duration::from_millis(10),
            monitor_interval: Duration::from_millis(25),
            ..Default::default()
        },
    )
    .expect("cluster binds an ephemeral port");
    (handle, obs)
}

fn round_trip(reader: &mut BufReader<TcpStream>, frame: &str) -> Json {
    reader
        .get_mut()
        .write_all(format!("{frame}\n").as_bytes())
        .expect("request writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response arrives");
    Json::parse(&line).expect("response frame is valid JSON")
}

fn connect(handle: &ServerHandle<MajorityClass>) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    BufReader::new(stream)
}

fn weights_of(frame: &Json) -> FeatureWeights {
    assert_eq!(
        frame.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected a success frame, got {frame:?}"
    );
    FeatureWeights {
        weights: frame
            .get("weights")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect(),
        intercept: frame.get("intercept").unwrap().as_f64().unwrap(),
        local_prediction: frame.get("local_prediction").unwrap().as_f64().unwrap(),
    }
}

/// Extracts one tenant's row from a multi-tenant `ping` frame.
fn tenant_row(frame: &Json, name: &str) -> Json {
    frame
        .get("tenants")
        .unwrap_or_else(|| panic!("ping frame lacks tenants: {frame:?}"))
        .as_arr()
        .unwrap()
        .iter()
        .find(|t| t.get("name").and_then(Json::as_str) == Some(name))
        .unwrap_or_else(|| panic!("no tenant row {name:?} in {frame:?}"))
        .clone()
}

fn tenant_state(client: &mut BufReader<TcpStream>, name: &str) -> String {
    let frame = round_trip(client, "{\"id\": 1000, \"method\": \"ping\"}");
    tenant_row(&frame, name)
        .get("state")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

#[test]
fn requests_route_by_tenant_and_unknown_tenants_get_404() {
    // Two tenants over *different* presets: routing mistakes are
    // structurally visible because their weight vectors have different
    // widths (Recidivism vs Census-Income feature counts).
    let (handle, obs) = start_cluster(
        vec![
            tenant_config("acme", DatasetPreset::Recidivism, None, None, 2),
            tenant_config("globex", DatasetPreset::CensusIncome, None, None, 2),
        ],
        LifecyclePolicy::default(),
    );
    let mut client = connect(&handle);

    // Absent tenant → the default tenant (acme, index 0).
    let default_frame = round_trip(&mut client, "{\"id\": 1, \"method\": \"explain\", \"row\": 0}");
    let default_weights = weights_of(&default_frame);

    // Explicit default tenant → the same engine, bit-identical.
    let named = round_trip(
        &mut client,
        "{\"id\": 2, \"method\": \"explain\", \"row\": 0, \"tenant\": \"acme\"}",
    );
    assert_eq!(weights_of(&named), default_weights);

    // The other tenant answers with its own model's explanation.
    let other = round_trip(
        &mut client,
        "{\"id\": 3, \"method\": \"explain\", \"row\": 0, \"tenant\": \"globex\"}",
    );
    let other_weights = weights_of(&other);
    assert_ne!(
        other_weights.weights.len(),
        default_weights.weights.len(),
        "tenants over different schemas must not share an engine"
    );

    // Unknown tenant → typed 404 naming the tenant; connection survives.
    let missing = round_trip(
        &mut client,
        "{\"id\": 4, \"method\": \"explain\", \"row\": 0, \"tenant\": \"hooli\"}",
    );
    assert_eq!(missing.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(missing.get("code").unwrap().as_u64(), Some(404));
    assert_eq!(missing.get("error").unwrap().as_str(), Some("unknown_tenant"));
    assert_eq!(missing.get("tenant").unwrap().as_str(), Some("hooli"));
    assert_eq!(missing.get("id").unwrap().as_u64(), Some(4));

    let frame = round_trip(&mut client, "{\"id\": 5, \"method\": \"ping\"}");
    assert_eq!(frame.get("pong").unwrap().as_bool(), Some(true));

    handle.shutdown();
    assert_eq!(handle.wait(), 3, "three explains served");
    let snap = obs.snapshot();
    assert_eq!(snap.counter(names::TENANCY_UNKNOWN_TENANT), 1);
    assert_eq!(snap.counter(&names::tenant_metric("acme", "requests")), 2);
    assert_eq!(snap.counter(&names::tenant_metric("globex", "requests")), 1);
}

#[test]
fn tenants_materialize_lazily_and_ping_reports_lifecycle() {
    let (handle, obs) = start_cluster(
        vec![
            tenant_config("acme", DatasetPreset::Recidivism, None, None, 2),
            tenant_config("globex", DatasetPreset::Recidivism, None, None, 2),
            tenant_config("initech", DatasetPreset::Recidivism, None, None, 2),
        ],
        LifecyclePolicy::default(),
    );
    let mut client = connect(&handle);

    // Before any explain: the listener is up but every repository is
    // cold — declaring a tenant costs a closure, not an engine.
    let frame = round_trip(&mut client, "{\"id\": 1, \"method\": \"ping\"}");
    assert_eq!(frame.get("warm_entries").unwrap().as_u64(), Some(0));
    for name in ["acme", "globex", "initech"] {
        let row = tenant_row(&frame, name);
        assert_eq!(row.get("state").unwrap().as_str(), Some("cold"));
        assert_eq!(row.get("entries").unwrap().as_u64(), Some(0));
    }
    assert_eq!(obs.snapshot().counter(names::TENANCY_COLD_STARTS), 0);

    // First request to one tenant cold-starts that tenant alone.
    let frame = round_trip(
        &mut client,
        "{\"id\": 2, \"method\": \"explain\", \"row\": 0, \"tenant\": \"globex\"}",
    );
    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
    let frame = round_trip(&mut client, "{\"id\": 3, \"method\": \"ping\"}");
    let row = tenant_row(&frame, "globex");
    assert_eq!(row.get("state").unwrap().as_str(), Some("warm"));
    assert!(row.get("entries").unwrap().as_u64().unwrap() > 0);
    assert_eq!(tenant_row(&frame, "acme").get("state").unwrap().as_str(), Some("cold"));
    assert_eq!(tenant_row(&frame, "initech").get("state").unwrap().as_str(), Some("cold"));

    handle.shutdown();
    handle.wait();
    let snap = obs.snapshot();
    assert_eq!(snap.counter(names::TENANCY_COLD_STARTS), 1);
    assert_eq!(snap.counter(&names::tenant_metric("globex", "cold_starts")), 1);
    assert_eq!(snap.counter(&names::tenant_metric("acme", "cold_starts")), 0);
    assert!(
        snap.histograms
            .get(names::TENANCY_COLD_START_LATENCY)
            .is_some_and(|h| h.count == 1),
        "cold-start wall time lands in the latency histogram"
    );
}

#[test]
fn quota_exhausted_tenants_answer_429_naming_the_tenant() {
    // quota 0: the draining-tenant idiom — every request bounces.
    let (handle, obs) = start_cluster(
        vec![
            tenant_config("acme", DatasetPreset::Recidivism, None, None, 2),
            tenant_config("initech", DatasetPreset::Recidivism, Some(0), None, 2),
        ],
        LifecyclePolicy::default(),
    );
    let mut client = connect(&handle);

    let frame = round_trip(
        &mut client,
        "{\"id\": 1, \"method\": \"explain\", \"row\": 0, \"tenant\": \"initech\"}",
    );
    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(false));
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(429));
    assert_eq!(frame.get("error").unwrap().as_str(), Some("tenant_over_quota"));
    assert_eq!(frame.get("tenant").unwrap().as_str(), Some("initech"));

    // A quota rejection happens at admission, before the batcher could
    // materialize anything: the bounced tenant must still be cold.
    assert_eq!(tenant_state(&mut client, "initech"), "cold");

    // Other tenants are unaffected.
    let frame = round_trip(
        &mut client,
        "{\"id\": 2, \"method\": \"explain\", \"row\": 0, \"tenant\": \"acme\"}",
    );
    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));

    handle.shutdown();
    handle.wait();
    let snap = obs.snapshot();
    assert_eq!(snap.counter(names::TENANCY_QUOTA_REJECTIONS), 1);
    assert_eq!(
        snap.counter(&names::tenant_metric("initech", "quota_rejections")),
        1
    );
    assert_eq!(snap.counter(&names::tenant_metric("initech", "cold_starts")), 0);
}

#[test]
fn idle_eviction_then_hydrated_readmission_is_bit_identical_at_1_and_4_workers() {
    let dir = std::env::temp_dir().join(format!("shahin_tenancy_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // The same drill at both worker counts; each run's served weights
    // are collected so cross-worker identity can be asserted at the end
    // (the consistent-hash sharding must not perturb explanations).
    let mut per_worker_runs: Vec<Vec<FeatureWeights>> = Vec::new();
    for n_workers in [1usize, 4] {
        let snap = dir.join(format!("acme_{n_workers}.shws"));
        let (handle, obs) = start_cluster(
            vec![
                tenant_config("acme", DatasetPreset::Recidivism, None, Some(snap.clone()), n_workers),
                tenant_config("globex", DatasetPreset::Recidivism, None, None, n_workers),
            ],
            LifecyclePolicy {
                memory_budget_bytes: None,
                idle_evict: Some(Duration::from_millis(150)),
            },
        );
        let mut client = connect(&handle);

        // First pass cold-primes acme (no snapshot on disk yet) and
        // records what it serves.
        let before: Vec<FeatureWeights> = (0..WARM_ROWS)
            .map(|row| {
                weights_of(&round_trip(
                    &mut client,
                    &format!(
                        "{{\"id\": {row}, \"method\": \"explain\", \"row\": {row}, \
                         \"tenant\": \"acme\"}}"
                    ),
                ))
            })
            .collect();
        assert_eq!(obs.snapshot().counter(names::TENANCY_HYDRATIONS), 0);

        // Idle past the keepalive: the monitor's lifecycle sweep must
        // retire the tenant and leave the at-evict snapshot behind.
        // Pings poll state without resetting the idle clock.
        let deadline = Instant::now() + Duration::from_secs(30);
        while tenant_state(&mut client, "acme") != "evicted" {
            assert!(Instant::now() < deadline, "idle eviction never happened");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(snap.exists(), "eviction leaves an at-evict snapshot");

        // Re-admission: the next request cold-starts again, hydrating
        // classifier-free from the at-evict snapshot, and every row
        // comes back bit-identical to the pre-eviction serving.
        for (row, donor) in before.iter().enumerate() {
            let frame = round_trip(
                &mut client,
                &format!(
                    "{{\"id\": {}, \"method\": \"explain\", \"row\": {row}, \
                     \"tenant\": \"acme\"}}",
                    100 + row
                ),
            );
            let served = weights_of(&frame);
            assert_eq!(served.weights.len(), donor.weights.len());
            for (a, b) in served.weights.iter().zip(&donor.weights) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "row {row} must be bit-identical after re-admission \
                     at {n_workers} workers"
                );
            }
            assert_eq!(served.intercept.to_bits(), donor.intercept.to_bits());
            assert_eq!(
                served.local_prediction.to_bits(),
                donor.local_prediction.to_bits()
            );
        }

        handle.shutdown();
        handle.wait();
        let snap_metrics = obs.snapshot();
        assert!(snap_metrics.counter(names::TENANCY_EVICTIONS) >= 1);
        assert!(snap_metrics.counter(names::TENANCY_HYDRATIONS) >= 1);
        assert!(snap_metrics.counter(&names::tenant_metric("acme", "cold_starts")) >= 2);
        assert!(snap_metrics.counter(&names::tenant_metric("acme", "hydrations")) >= 1);
        assert!(snap_metrics.counter(&names::tenant_metric("acme", "loads_ok")) >= 1);
        assert_eq!(
            snap_metrics.counter(&names::tenant_metric("acme", "load_rejected")),
            0
        );
        per_worker_runs.push(before);
    }

    // Worker count is a routing detail, not a numeric one: the 1-worker
    // and 4-worker clusters served identical bits.
    let (one, four) = (&per_worker_runs[0], &per_worker_runs[1]);
    assert_eq!(one.len(), four.len());
    for (row, (a, b)) in one.iter().zip(four).enumerate() {
        assert_eq!(
            a, b,
            "row {row} differs between 1-worker and 4-worker clusters"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn each_tenant_serves_bit_identical_to_its_offline_batch_parallel() {
    // The acceptance drill: three tenants over three different presets,
    // every served explanation bit-identical to what that tenant's own
    // offline parallel driver computes over the same warm set.
    let presets = [
        ("acme", DatasetPreset::Recidivism),
        ("globex", DatasetPreset::CensusIncome),
        ("initech", DatasetPreset::LendingClub),
    ];
    let offline: Vec<Vec<FeatureWeights>> = presets
        .iter()
        .map(|(_, preset)| {
            let (ctx, inner, warm) = tenant_parts(*preset);
            ShahinBatch::new(BatchConfig {
                n_threads: Some(2),
                ..Default::default()
            })
            .explain_lime_parallel(&ctx, &CountingClassifier::new(inner), &warm, &lime(), SEED)
            .explanations
        })
        .collect();

    let (handle, _obs) = start_cluster(
        presets
            .iter()
            .map(|(name, preset)| tenant_config(name, *preset, None, None, 2))
            .collect(),
        LifecyclePolicy::default(),
    );
    let mut client = connect(&handle);

    // Rows in reverse, tenants interleaved per row, so micro-batch
    // composition resembles neither the offline row order nor a
    // single-tenant stream.
    for row in (0..WARM_ROWS).rev() {
        for ((name, _), donor) in presets.iter().zip(&offline) {
            let frame = round_trip(
                &mut client,
                &format!(
                    "{{\"id\": {row}, \"method\": \"explain\", \"row\": {row}, \
                     \"tenant\": \"{name}\"}}"
                ),
            );
            assert_eq!(
                weights_of(&frame),
                donor[row],
                "tenant {name} row {row} must be bit-identical to its \
                 offline BatchParallel"
            );
        }
    }

    handle.shutdown();
    assert_eq!(handle.wait(), (WARM_ROWS * presets.len()) as u64);
}
