//! End-to-end tests over a real TCP connection: warm-served explanations
//! must be bit-identical to the offline parallel driver, malformed
//! frames must not kill connections, and shutdown must drain cleanly.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use shahin::obs::names;
use shahin::{BatchConfig, MetricsRegistry, ShahinBatch, WarmEngine, WarmExplainer};
use shahin_explain::{ExplainContext, FeatureWeights, LimeExplainer, LimeParams};
use shahin_model::{CountingClassifier, MajorityClass};
use shahin_obs::json::Json;
use shahin_serve::{ServeConfig, Server, ServerHandle};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

const SEED: u64 = 11;

fn setup() -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
    let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(5);
    let mut rng = StdRng::seed_from_u64(5);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
    let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
    let rows: Vec<usize> = (0..24.min(split.test.n_rows())).collect();
    (ctx, clf, split.test.select(&rows))
}

fn lime() -> LimeExplainer {
    LimeExplainer::new(LimeParams {
        n_samples: 60,
        ..Default::default()
    })
}

fn start_server(n_workers: usize) -> (ServerHandle<MajorityClass>, MetricsRegistry, usize) {
    let (ctx, clf, warm) = setup();
    let n_rows = warm.n_rows();
    let reg = MetricsRegistry::new();
    let engine = Arc::new(WarmEngine::prime(
        BatchConfig {
            n_threads: Some(n_workers),
            ..Default::default()
        },
        WarmExplainer::Lime(lime()),
        ctx,
        clf,
        warm,
        SEED,
        &reg,
    ));
    let handle = Server::start(
        engine,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            poll_interval: Duration::from_millis(10),
            // Fast ticks and a deep ring so the windowed aggregator has
            // seen every sample by the time a test interrogates `stats`.
            monitor_interval: Duration::from_millis(20),
            windows: 256,
            ..Default::default()
        },
    )
    .expect("server binds an ephemeral port");
    (handle, reg, n_rows)
}

/// One request/response round trip on an established connection.
fn round_trip(reader: &mut BufReader<TcpStream>, frame: &str) -> Json {
    reader
        .get_mut()
        .write_all(format!("{frame}\n").as_bytes())
        .expect("request writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("response arrives");
    Json::parse(&line).expect("response frame is valid JSON")
}

fn connect<C: shahin_model::Classifier + 'static>(
    handle: &ServerHandle<C>,
) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    BufReader::new(stream)
}

fn weights_of(frame: &Json) -> FeatureWeights {
    assert_eq!(
        frame.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected a success frame, got {frame:?}"
    );
    FeatureWeights {
        weights: frame
            .get("weights")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect(),
        intercept: frame.get("intercept").unwrap().as_f64().unwrap(),
        local_prediction: frame.get("local_prediction").unwrap().as_f64().unwrap(),
    }
}

#[test]
fn warm_server_matches_offline_batch_parallel_at_1_and_4_workers() {
    let (ctx, clf, warm) = setup();
    let offline = ShahinBatch::new(BatchConfig {
        n_threads: Some(2),
        ..Default::default()
    })
    .explain_lime_parallel(&ctx, &clf, &warm, &lime(), SEED);

    for n_workers in [1usize, 4] {
        let (handle, _reg, n_rows) = start_server(n_workers);
        assert_eq!(n_rows, warm.n_rows());

        // Two clients interleaving rows (even/odd, served in reverse) so
        // micro-batch composition differs from the offline row order.
        let mut clients: Vec<BufReader<TcpStream>> = (0..2).map(|_| connect(&handle)).collect();
        for row in (0..n_rows).rev() {
            let client = &mut clients[row % 2];
            let frame = round_trip(
                client,
                &format!("{{\"id\": {row}, \"method\": \"explain\", \"row\": {row}}}"),
            );
            assert_eq!(frame.get("row").unwrap().as_u64(), Some(row as u64));
            let served = weights_of(&frame);
            assert_eq!(
                &served, &offline.explanations[row],
                "row {row} must be bit-identical to offline at {n_workers} workers"
            );
        }
        handle.shutdown();
        handle.wait();
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_connection_survives() {
    let (handle, reg, n_rows) = start_server(1);
    let mut client = connect(&handle);

    // Bad JSON → 400, connection stays up.
    let frame = round_trip(&mut client, "{not json");
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(400));
    assert_eq!(frame.get("error").unwrap().as_str(), Some("bad_request"));

    // Unknown method → 400, and the echoed id survives the rejection.
    let frame = round_trip(&mut client, "{\"id\": 9, \"method\": \"explode\"}");
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(400));
    assert_eq!(frame.get("id").unwrap().as_u64(), Some(9));

    // Wrong arity → 400.
    let frame = round_trip(&mut client, "{\"id\": 10, \"method\": \"explain\"}");
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(400));

    // Out-of-range row → 404.
    let frame = round_trip(
        &mut client,
        &format!("{{\"id\": 11, \"method\": \"explain\", \"row\": {n_rows}}}"),
    );
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(404));

    // The same connection still serves pings and real work.
    let frame = round_trip(&mut client, "{\"id\": 12, \"method\": \"ping\"}");
    assert_eq!(frame.get("pong").unwrap().as_bool(), Some(true));
    let frame = round_trip(
        &mut client,
        "{\"id\": 13, \"method\": \"explain\", \"row\": 0}",
    );
    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));

    handle.shutdown();
    handle.wait();
    let snap = reg.snapshot();
    assert_eq!(snap.counter(names::SERVE_REJECTED_MALFORMED), 4);
    assert_eq!(snap.counter(names::SERVE_REQUESTS), 1);
}

#[test]
fn overlong_frames_get_one_400_and_the_connection_survives() {
    use shahin_serve::MAX_FRAME_LEN;
    let (handle, reg, _) = start_server(1);
    let mut client = connect(&handle);

    // A single line more than twice the cap, streamed in two writes so
    // part of it sits in the reader's partial-line buffer across reads.
    let garbage = "x".repeat(MAX_FRAME_LEN + 100);
    client.get_mut().write_all(garbage.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    client.get_mut().write_all(garbage.as_bytes()).unwrap();
    client.get_mut().write_all(b"\n").unwrap();

    // Exactly one 400 for the whole overlong line.
    let mut line = String::new();
    client.read_line(&mut line).expect("400 frame arrives");
    let frame = Json::parse(&line).expect("valid error frame");
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(400));
    assert!(frame
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("exceeds"));

    // The connection still serves real work afterwards.
    let frame = round_trip(&mut client, "{\"id\": 5, \"method\": \"ping\"}");
    assert_eq!(frame.get("pong").unwrap().as_bool(), Some(true));
    let frame = round_trip(
        &mut client,
        "{\"id\": 6, \"method\": \"explain\", \"row\": 0}",
    );
    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));

    handle.shutdown();
    handle.wait();
    assert_eq!(reg.snapshot().counter(names::SERVE_REJECTED_MALFORMED), 1);
}

#[test]
fn admin_shutdown_frame_drains_and_reports_served_requests() {
    let (handle, reg, _) = start_server(2);
    let mut client = connect(&handle);
    for row in 0..5 {
        let frame = round_trip(
            &mut client,
            &format!("{{\"id\": {row}, \"method\": \"explain\", \"row\": {row}}}"),
        );
        assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
    }
    let frame = round_trip(&mut client, "{\"id\": 99, \"method\": \"shutdown\"}");
    assert_eq!(frame.get("shutting_down").unwrap().as_bool(), Some(true));
    let served = handle.wait();
    assert_eq!(served, 5);
    let snap = reg.snapshot();
    assert_eq!(snap.gauge(names::SERVE_DRAINED), 1);
    assert!(snap.counter(names::SERVE_BATCHES) > 0);
    assert_eq!(snap.counter(names::SERVE_CONNECTIONS), 1);
}

#[test]
fn explains_arriving_mid_drain_are_rejected_with_503() {
    use std::sync::atomic::{AtomicBool, Ordering};

    // A classifier that can be frozen after priming, so the batcher is
    // provably still draining when the late frames arrive.
    struct Gated {
        hold: Arc<AtomicBool>,
    }
    impl shahin_model::Classifier for Gated {
        fn predict_proba(&self, _inst: &[shahin_tabular::Feature]) -> f64 {
            while self.hold.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(1));
            }
            0.7
        }
    }

    let (ctx, _clf, warm) = setup();
    let hold = Arc::new(AtomicBool::new(false));
    let reg = MetricsRegistry::new();
    let engine = Arc::new(WarmEngine::prime(
        BatchConfig {
            n_threads: Some(1),
            ..Default::default()
        },
        // A sample budget far beyond what the warm store can pool, so
        // explaining row 0 must generate fresh samples — and block on
        // the frozen classifier.
        WarmExplainer::Lime(LimeExplainer::new(LimeParams {
            n_samples: 400,
            ..Default::default()
        })),
        ctx,
        CountingClassifier::new(Gated {
            hold: Arc::clone(&hold),
        }),
        warm,
        SEED,
        &reg,
    ));
    let handle = Server::start(
        engine,
        ServeConfig {
            max_delay: Duration::from_millis(2),
            poll_interval: Duration::from_millis(10),
            ..Default::default()
        },
    )
    .unwrap();

    hold.store(true, Ordering::Relaxed);
    let mut client = connect(&handle);
    client
        .get_mut()
        .write_all(b"{\"id\": 1, \"method\": \"explain\", \"row\": 0}\n")
        .unwrap();
    // Let the batcher pick it up and block inside the engine.
    std::thread::sleep(Duration::from_millis(50));
    let mut admin = connect(&handle);
    let frame = round_trip(&mut admin, "{\"id\": 90, \"method\": \"shutdown\"}");
    assert_eq!(frame.get("shutting_down").unwrap().as_bool(), Some(true));

    // The drain cannot finish while the classifier is frozen, so this
    // explain deterministically lands mid-drain.
    let frame = round_trip(
        &mut client,
        "{\"id\": 2, \"method\": \"explain\", \"row\": 1}",
    );
    assert_eq!(frame.get("id").unwrap().as_u64(), Some(2));
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(503));
    assert_eq!(frame.get("error").unwrap().as_str(), Some("shutting_down"));

    // Unfreeze: the in-flight request still completes (the drain answers
    // every admitted request) and the server exits cleanly.
    hold.store(false, Ordering::Relaxed);
    let mut line = String::new();
    client.read_line(&mut line).unwrap();
    let frame = Json::parse(&line).unwrap();
    assert_eq!(frame.get("id").unwrap().as_u64(), Some(1));
    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(handle.wait(), 1);
    assert_eq!(reg.snapshot().counter(names::SERVE_REJECTED_SHUTDOWN), 1);
}

#[test]
fn ping_reports_uptime_version_and_warm_entries() {
    let (handle, _reg, _n_rows) = start_server(1);
    let mut client = connect(&handle);
    let frame = round_trip(&mut client, "{\"id\": 1, \"method\": \"ping\"}");
    assert_eq!(frame.get("pong").unwrap().as_bool(), Some(true));
    assert!(frame.get("uptime_secs").unwrap().as_u64().is_some());
    assert_eq!(
        frame.get("version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    // Priming populates the perturbation store, so a freshly started
    // server always reports a non-empty warm repository.
    assert!(frame.get("warm_entries").unwrap().as_u64().unwrap() > 0);
    handle.shutdown();
    handle.wait();
}

#[test]
fn metrics_and_stats_frames_round_trip_during_and_after_load() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let (handle, reg, n_rows) = start_server(2);

    // A load burst (two closed-loop clients sweeping every row three
    // times) with an admin poller hammering `metrics`/`stats` on its own
    // connection the whole time.
    let stop = AtomicBool::new(false);
    let polls = std::thread::scope(|scope| {
        let loaders: Vec<_> = (0..2usize)
            .map(|c| {
                let handle = &handle;
                scope.spawn(move || {
                    let mut client = connect(handle);
                    for i in 0..3 * n_rows {
                        let row = (i + c) % n_rows;
                        let frame = round_trip(
                            &mut client,
                            &format!("{{\"id\": {i}, \"method\": \"explain\", \"row\": {row}}}"),
                        );
                        assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
                    }
                })
            })
            .collect();
        let admin = {
            let (stop, handle) = (&stop, &handle);
            scope.spawn(move || {
                let mut client = connect(handle);
                let mut polls = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let frame = round_trip(
                        &mut client,
                        "{\"id\": 7, \"method\": \"metrics\", \"format\": \"prometheus\"}",
                    );
                    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
                    let text = frame.get("metrics").unwrap().as_str().unwrap();
                    assert!(text.contains("# TYPE serve_requests_total counter"));

                    let frame = round_trip(
                        &mut client,
                        "{\"id\": 8, \"method\": \"metrics\", \"format\": \"json\"}",
                    );
                    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
                    assert!(frame.get("snapshot").is_some());

                    let frame = round_trip(&mut client, "{\"id\": 9, \"method\": \"stats\"}");
                    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
                    assert!(frame.at(&["stats", "req_per_s"]).is_some());

                    polls += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                polls
            })
        };
        for l in loaders {
            l.join().expect("load client");
        }
        stop.store(true, Ordering::Relaxed);
        admin.join().expect("admin poller")
    });
    assert!(
        polls > 0,
        "admin frames must answer while load is in flight"
    );

    // Give the monitor ≥2 ticks to fold the burst's tail into the window
    // ring, then ask for the windowed p99. The ring (256 windows of
    // 20ms) spans the whole run, so the windowed quantile must land
    // within one log2 bucket of the end-of-run histogram quantile.
    let mut client = connect(&handle);
    let mut stats_p99 = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(45));
        let frame = round_trip(&mut client, "{\"id\": 10, \"method\": \"stats\"}");
        assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
        stats_p99 = frame.at(&["stats", "p99_ns"]).and_then(Json::as_u64);
        let seen = frame
            .at(&["stats", "req_per_s"])
            .and_then(Json::as_f64)
            .unwrap();
        if stats_p99.is_some() && seen > 0.0 {
            break;
        }
    }
    let stats_p99 = stats_p99.expect("windowed p99 materializes after the burst");

    // The prometheus exposition carries the same histogram.
    let frame = round_trip(
        &mut client,
        "{\"id\": 11, \"method\": \"metrics\", \"format\": \"prometheus\"}",
    );
    let text = frame.get("metrics").unwrap().as_str().unwrap();
    assert!(text.contains("serve_request_latency_ns_bucket{le="));
    assert!(text.contains("serve_request_latency_ns_count"));

    handle.shutdown();
    handle.wait();

    let snapshot_p99 = reg
        .snapshot()
        .histograms
        .get(names::SERVE_REQUEST_LATENCY)
        .expect("latency histogram recorded")
        .quantile_ns(0.99)
        .expect("histogram has samples");
    let (windowed, end_of_run) = (
        shahin_obs::bucket_index(stats_p99),
        shahin_obs::bucket_index(snapshot_p99),
    );
    assert!(
        windowed.abs_diff(end_of_run) <= 1,
        "windowed p99 bucket {windowed} (={stats_p99}ns) vs end-of-run \
         bucket {end_of_run} (={snapshot_p99}ns)"
    );
}

/// Delegates to a calm classifier until armed, then to a chaotic
/// resilient stack — so priming is deterministic and fast while the
/// serving path sees the injected faults.
struct ArmedChaos {
    chaotic: shahin_model::ResilientClassifier<shahin_model::ChaosClassifier<MajorityClass>>,
    calm: MajorityClass,
    armed: Arc<AtomicBool>,
}

impl shahin_model::Classifier for ArmedChaos {
    fn predict_proba(&self, inst: &[shahin_tabular::Feature]) -> f64 {
        if self.armed.load(Ordering::Relaxed) {
            self.chaotic.predict_proba(inst)
        } else {
            self.calm.predict_proba(inst)
        }
    }
}

fn armed_chaos(config: shahin_model::ChaosConfig) -> (ArmedChaos, Arc<AtomicBool>) {
    let armed = Arc::new(AtomicBool::new(false));
    let clf = ArmedChaos {
        chaotic: shahin_model::ResilientClassifier::new(
            shahin_model::ChaosClassifier::new(MajorityClass::fit(&[1, 1, 0]), config),
            shahin_model::RetryPolicy::default(),
        ),
        calm: MajorityClass::fit(&[1, 1, 0]),
        armed: Arc::clone(&armed),
    };
    (clf, armed)
}

/// Asserts the span tree is well-formed — span 0 a root covering
/// `total_ns`, every other span nesting within an earlier parent — and
/// returns `(name, parent, start_ns, dur_ns)` tuples.
fn check_span_tree(trace: &Json) -> Vec<(String, Option<u64>, u64, u64)> {
    let spans: Vec<(String, Option<u64>, u64, u64)> = trace
        .get("spans")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|s| {
            (
                s.get("name").unwrap().as_str().unwrap().to_string(),
                s.get("parent").and_then(Json::as_u64),
                s.get("start_ns").unwrap().as_u64().unwrap(),
                s.get("dur_ns").unwrap().as_u64().unwrap(),
            )
        })
        .collect();
    assert!(!spans.is_empty(), "trace has no spans: {trace:?}");
    let total = trace.get("total_ns").unwrap().as_u64().unwrap();
    assert_eq!(spans[0].1, None, "span 0 must be the root");
    assert_eq!(spans[0].2, 0, "root must start at the trace origin");
    assert_eq!(spans[0].3, total, "root must span the whole request");
    for (i, (name, parent, start, dur)) in spans.iter().enumerate().skip(1) {
        let p = parent.unwrap_or_else(|| panic!("span {i} ({name}) has no parent")) as usize;
        assert!(p < i, "span {i} ({name}) references a forward parent {p}");
        let (_, _, p_start, p_dur) = &spans[p];
        assert!(
            *p_start <= *start && start + dur <= p_start + p_dur,
            "span {i} ({name}) [{start}, {}] does not nest within parent \
             [{p_start}, {}]",
            start + dur,
            p_start + p_dur
        );
    }
    spans
}

#[test]
fn slow_request_trace_round_trips_with_nested_spans() {
    // Chaos latency injection makes the request reliably slow: every
    // armed classifier call sleeps, and the 400-sample budget forces
    // fresh sample generation past what the warm store pooled.
    let (ctx, _clf, warm) = setup();
    let reg = MetricsRegistry::new();
    let (clf, armed) = armed_chaos(shahin_model::ChaosConfig {
        transient_rate: 0.0,
        nan_rate: 0.0,
        panic_rate: 0.0,
        latency_rate: 1.0,
        latency_spike: Duration::from_millis(2),
        ..Default::default()
    });
    let engine = Arc::new(WarmEngine::prime(
        BatchConfig {
            n_threads: Some(1),
            ..Default::default()
        },
        WarmExplainer::Lime(LimeExplainer::new(LimeParams {
            n_samples: 400,
            ..Default::default()
        })),
        ctx,
        CountingClassifier::new(clf),
        warm,
        SEED,
        &reg,
    ));
    let handle = Server::start(
        engine,
        ServeConfig {
            max_delay: Duration::from_millis(2),
            poll_interval: Duration::from_millis(10),
            monitor_interval: Duration::from_millis(20),
            windows: 256,
            // No probabilistic retention: this trace must be kept by the
            // slow-request rule alone.
            trace_sample: 0.0,
            trace_slow: Duration::from_millis(50),
            ..Default::default()
        },
    )
    .expect("server binds");
    armed.store(true, Ordering::Relaxed);

    let mut client = connect(&handle);
    let t = Instant::now();
    let frame = round_trip(&mut client, "{\"id\": 1, \"method\": \"explain\", \"row\": 0}");
    let wall_ns = t.elapsed().as_nanos() as u64;
    assert_eq!(frame.get("ok").unwrap().as_bool(), Some(true));
    let trace_id = frame
        .get("trace_id")
        .and_then(Json::as_u64)
        .expect("response frames carry the trace id");

    let fetched = round_trip(
        &mut client,
        &format!("{{\"id\": 2, \"method\": \"trace\", \"trace_id\": {trace_id}}}"),
    );
    assert_eq!(fetched.get("ok").unwrap().as_bool(), Some(true));
    let trace = fetched.get("trace").expect("trace payload");
    assert_eq!(trace.get("trace_id").and_then(Json::as_u64), Some(trace_id));
    assert_eq!(trace.get("row").and_then(Json::as_u64), Some(0));
    assert!(
        trace.get("batch_id").and_then(Json::as_u64).is_some(),
        "a served request records its micro-batch"
    );

    let spans = check_span_tree(trace);
    let names: Vec<&str> = spans.iter().map(|(n, ..)| n.as_str()).collect();
    for stage in ["request", "queue", "batch", "retrieve", "classify", "explain"] {
        assert!(names.contains(&stage), "span tree lacks '{stage}': {names:?}");
    }

    // The slow rule fired, the trace's wall time brackets within the
    // client-measured round trip, and every stage fits inside it.
    let total_ns = trace.get("total_ns").unwrap().as_u64().unwrap();
    assert!(
        total_ns >= 50_000_000,
        "chaos latency must push the request past trace_slow, got {total_ns}ns"
    );
    assert!(total_ns <= wall_ns, "trace total {total_ns}ns exceeds the measured {wall_ns}ns");
    let stage_sum: u64 = spans
        .iter()
        .filter(|(_, parent, ..)| *parent == Some(2))
        .map(|(.., dur)| dur)
        .sum();
    assert!(
        stage_sum <= wall_ns,
        "engine stage durations {stage_sum}ns exceed the request wall {wall_ns}ns"
    );
    let fresh = trace
        .at(&["counters", "samples_fresh"])
        .and_then(Json::as_u64)
        .unwrap();
    assert!(fresh > 0, "the slow request must have generated fresh samples");

    // The same trace renders as a single-request Chrome-trace document.
    let chrome = round_trip(
        &mut client,
        &format!(
            "{{\"id\": 3, \"method\": \"trace\", \"trace_id\": {trace_id}, \
             \"format\": \"chrome\"}}"
        ),
    );
    assert_eq!(chrome.get("ok").unwrap().as_bool(), Some(true));
    let events = chrome
        .at(&["chrome_trace", "traceEvents"])
        .and_then(Json::as_arr)
        .expect("chrome_trace carries traceEvents");
    let complete = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .count();
    assert_eq!(complete, spans.len(), "one complete event per span");

    handle.shutdown();
    handle.wait();
    assert!(reg.snapshot().counter(names::SERVE_TRACE_FETCHES) >= 2);
}

#[test]
fn tail_sampling_retains_every_quarantined_trace_and_samples_the_rest() {
    // Mixed chaos load: seeded panics quarantine a slice of the requests
    // while the rest succeed. Every quarantined trace must be retained;
    // successes fall back to deterministic sampling (plus the slow-K
    // reservoir) under the store bound.
    const SAMPLE: f64 = 0.05;
    let (ctx, _clf, warm) = setup();
    let n_rows = warm.n_rows();
    let reg = MetricsRegistry::new();
    let (clf, armed) = armed_chaos(shahin_model::ChaosConfig {
        transient_rate: 0.0,
        nan_rate: 0.0,
        panic_rate: 0.08,
        latency_rate: 0.0,
        ..Default::default()
    });
    let engine = Arc::new(WarmEngine::prime(
        BatchConfig {
            n_threads: Some(2),
            ..Default::default()
        },
        WarmExplainer::Lime(lime()),
        ctx,
        CountingClassifier::new(clf),
        warm,
        SEED,
        &reg,
    ));
    let handle = Server::start(
        engine,
        ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            poll_interval: Duration::from_millis(10),
            // A long monitor interval keeps the slow-K reservoir to a
            // handful of windows, so the retained-success bound below is
            // meaningful.
            monitor_interval: Duration::from_secs(5),
            trace_sample: SAMPLE,
            trace_slow: Duration::from_secs(3600),
            trace_store: 256,
            ..Default::default()
        },
    )
    .expect("server binds");
    armed.store(true, Ordering::Relaxed);

    let mut client = connect(&handle);
    let mut quarantined: Vec<u64> = Vec::new();
    let mut succeeded: Vec<u64> = Vec::new();
    for i in 0..3 * n_rows {
        let frame = round_trip(
            &mut client,
            &format!(
                "{{\"id\": {i}, \"method\": \"explain\", \"row\": {}}}",
                i % n_rows
            ),
        );
        let trace_id = frame
            .get("trace_id")
            .and_then(Json::as_u64)
            .expect("every admitted request carries a trace id");
        if frame.get("ok").unwrap().as_bool() == Some(true) {
            succeeded.push(trace_id);
        } else {
            assert_eq!(frame.get("code").unwrap().as_u64(), Some(422));
            quarantined.push(trace_id);
        }
    }
    assert!(
        !quarantined.is_empty() && !succeeded.is_empty(),
        "the chaos schedule must produce a mixed outcome \
         ({} quarantined / {} ok)",
        quarantined.len(),
        succeeded.len()
    );

    // Tail retention: the error selector returns exactly the quarantined
    // requests, regardless of the 5% sampling rate.
    let errors = round_trip(
        &mut client,
        "{\"id\": 9000, \"method\": \"trace\", \"errors\": true}",
    );
    assert_eq!(errors.get("ok").unwrap().as_bool(), Some(true));
    let mut error_ids: Vec<u64> = errors
        .get("traces")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|t| {
            assert_eq!(t.get("quarantined").and_then(Json::as_bool), Some(true));
            check_span_tree(t);
            t.get("trace_id").unwrap().as_u64().unwrap()
        })
        .collect();
    let mut expected = quarantined.clone();
    error_ids.sort_unstable();
    expected.sort_unstable();
    assert_eq!(
        error_ids, expected,
        "every quarantined trace (and only those) must be retained"
    );

    // Success traces: the deterministically sampled ones resolve; the
    // retained total stays near the sampled count (the slow-K reservoir
    // may add up to 8 per window) and well under both the success count
    // and the store bound.
    let mut retained_successes = 0usize;
    let mut sampled = 0usize;
    for (i, &id) in succeeded.iter().enumerate() {
        let frame = round_trip(
            &mut client,
            &format!("{{\"id\": {}, \"method\": \"trace\", \"trace_id\": {id}}}", 9001 + i),
        );
        let ok = frame.get("ok").unwrap().as_bool() == Some(true);
        if shahin::trace_sampled(id, SAMPLE) {
            sampled += 1;
            assert!(ok, "sampled success trace {id} must be retrievable");
            assert_eq!(
                frame.at(&["trace", "quarantined"]).and_then(Json::as_bool),
                Some(false)
            );
        } else if !ok {
            assert_eq!(frame.get("code").unwrap().as_u64(), Some(404));
        }
        retained_successes += ok as usize;
    }
    assert!(
        retained_successes <= sampled + 32,
        "{retained_successes} success traces retained vs {sampled} sampled \
         — tail sampling is not bounding retention"
    );
    assert!(
        retained_successes < succeeded.len(),
        "sampling at {SAMPLE} must drop some of the {} successes",
        succeeded.len()
    );

    // Store totals agree: something was dropped, nothing exceeded the
    // configured bound.
    let store = errors.get("store").expect("multi-trace frames carry totals");
    assert!(store.get("dropped").unwrap().as_u64().unwrap() > 0);
    assert!(store.get("len").unwrap().as_u64().unwrap() <= 256);

    handle.shutdown();
    handle.wait();
    let snap = reg.snapshot();
    assert_eq!(
        snap.counter(names::SERVE_QUARANTINED),
        quarantined.len() as u64
    );
    assert!(snap.gauge(names::TRACE_DROPPED) > 0, "monitor publishes drop totals");
}

#[test]
fn queued_deadline_expiry_yields_408() {
    // deadline_ms: 0 expires by the time the batcher dequeues it.
    let (handle, reg, _) = start_server(1);
    let mut client = connect(&handle);
    let frame = round_trip(
        &mut client,
        "{\"id\": 1, \"method\": \"explain\", \"row\": 0, \"deadline_ms\": 0}",
    );
    assert_eq!(frame.get("code").unwrap().as_u64(), Some(408));
    assert_eq!(
        frame.get("error").unwrap().as_str(),
        Some("deadline_expired")
    );
    handle.shutdown();
    handle.wait();
    assert_eq!(reg.snapshot().counter(names::SERVE_DEADLINE_EXPIRED), 1);
}

#[test]
fn snapshot_frame_persists_warm_state_and_a_restart_serves_it_bit_identically() {
    let dir = std::env::temp_dir().join(format!("shahin_e2e_snap_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snap_path = dir.join("nested").join("warm.snap");

    // Donor server: snapshots enabled, no periodic timer — only the
    // admin frame (and the final at-drain snapshot) write the file.
    let (ctx, clf, warm) = setup();
    let reg = MetricsRegistry::new();
    let engine = Arc::new(WarmEngine::prime(
        BatchConfig::default(),
        WarmExplainer::Lime(lime()),
        ctx,
        clf,
        warm,
        SEED,
        &reg,
    ));
    let donor_bytes = engine.snapshot_bytes();
    let handle = Server::start(
        engine,
        ServeConfig {
            poll_interval: Duration::from_millis(10),
            monitor_interval: Duration::from_millis(20),
            snapshot_out: Some(snap_path.clone()),
            ..Default::default()
        },
    )
    .expect("server binds");
    let mut client = connect(&handle);

    // Serve a few rows to compare against the hydrated replica later.
    let mut donor_served: Vec<FeatureWeights> = Vec::new();
    for row in 0..4 {
        let frame = round_trip(
            &mut client,
            &format!("{{\"id\": {row}, \"method\": \"explain\", \"row\": {row}}}"),
        );
        donor_served.push(weights_of(&frame));
    }

    let ack = round_trip(&mut client, "{\"id\": 90, \"method\": \"snapshot\"}");
    assert_eq!(ack.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(
        ack.get("snapshot_requested").unwrap().as_bool(),
        Some(true)
    );
    // The monitor writes within one poll tick; wait for it.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !snap_path.exists() {
        assert!(Instant::now() < deadline, "snapshot file never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
    handle.wait();
    let snap = reg.snapshot();
    assert_eq!(snap.counter(names::PERSIST_SNAPSHOTS_REQUESTED), 1);
    assert!(snap.counter(names::PERSIST_SNAPSHOTS_TAKEN) >= 1);
    assert_eq!(snap.counter(names::PERSIST_SNAPSHOTS_FAILED), 0);
    assert!(snap.gauge(names::PERSIST_SNAPSHOT_BYTES) > 0);

    // Reads don't mutate the store, so the served-then-snapshotted bytes
    // equal a pre-serving dump — the snapshot is canonical.
    let file_bytes = std::fs::read(&snap_path).expect("snapshot file readable");
    assert_eq!(file_bytes, donor_bytes, "snapshot dump must be canonical");

    // Replica: hydrate a fresh engine from the file and serve the same
    // rows. Zero classifier invocations to warm up, identical bytes out.
    let (ctx, clf, warm) = setup();
    let reg2 = MetricsRegistry::new();
    let replica = WarmEngine::prime_from_snapshot(
        BatchConfig::default(),
        WarmExplainer::Lime(lime()),
        ctx,
        clf,
        warm,
        SEED,
        &reg2,
        &file_bytes,
    )
    .expect("snapshot hydrates");
    assert_eq!(replica.invocations(), 0, "hydration is classifier-free");
    let handle = Server::start(
        Arc::new(replica),
        ServeConfig {
            poll_interval: Duration::from_millis(10),
            monitor_interval: Duration::from_millis(20),
            ..Default::default()
        },
    )
    .expect("replica binds");
    let mut client = connect(&handle);
    let disabled = round_trip(&mut client, "{\"id\": 91, \"method\": \"snapshot\"}");
    assert_eq!(disabled.get("code").unwrap().as_u64(), Some(404));
    assert_eq!(
        disabled.get("error").unwrap().as_str(),
        Some("snapshots_disabled")
    );
    for row in 0..4 {
        let frame = round_trip(
            &mut client,
            &format!("{{\"id\": {row}, \"method\": \"explain\", \"row\": {row}}}"),
        );
        let served = weights_of(&frame);
        let donor = &donor_served[row as usize];
        for (a, b) in served.weights.iter().zip(&donor.weights) {
            assert_eq!(a.to_bits(), b.to_bits(), "weights must be bit-identical");
        }
        assert_eq!(served.intercept.to_bits(), donor.intercept.to_bits());
    }
    handle.shutdown();
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigusr1_triggers_an_on_demand_snapshot() {
    let dir = std::env::temp_dir().join(format!("shahin_e2e_usr1_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let snap_path = dir.join("warm.snap");
    let (ctx, clf, warm) = setup();
    let reg = MetricsRegistry::new();
    let engine = Arc::new(WarmEngine::prime(
        BatchConfig::default(),
        WarmExplainer::Lime(lime()),
        ctx,
        clf,
        warm,
        SEED,
        &reg,
    ));
    let handle = Server::start(
        engine,
        ServeConfig {
            poll_interval: Duration::from_millis(10),
            monitor_interval: Duration::from_millis(20),
            snapshot_out: Some(snap_path.clone()),
            ..Default::default()
        },
    )
    .expect("server binds");
    // The test hook stands in for a real SIGUSR1 delivery (the handler
    // does exactly this store).
    shahin_serve::signal::raise_snapshot();
    let deadline = Instant::now() + Duration::from_secs(10);
    while !snap_path.exists() {
        assert!(Instant::now() < deadline, "snapshot file never appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.shutdown();
    handle.wait();
    let snap = reg.snapshot();
    assert!(snap.counter(names::PERSIST_SNAPSHOTS_REQUESTED) >= 1);
    assert!(snap.counter(names::PERSIST_SNAPSHOTS_TAKEN) >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}
