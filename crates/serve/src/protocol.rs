//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response frame per request, in any order
//! (frames carry the client's `id`). Malformed frames — bad JSON, an
//! unknown method, wrong arity or types — yield a typed error frame and
//! leave the connection open; only EOF or shutdown closes it.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "method": "explain", "row": 17}
//! {"id": 2, "method": "explain", "row": 3, "deadline_ms": 250}
//! {"id": 13, "method": "explain", "row": 5, "tenant": "acme"}
//! {"id": 3, "method": "ping"}
//! {"id": 4, "method": "shutdown"}
//! {"id": 5, "method": "metrics"}
//! {"id": 6, "method": "metrics", "format": "json"}
//! {"id": 7, "method": "stats"}
//! {"id": 8, "method": "trace", "trace_id": 42}
//! {"id": 9, "method": "trace", "trace_id": 42, "format": "chrome"}
//! {"id": 10, "method": "trace", "slowest": 5}
//! {"id": 11, "method": "trace", "errors": true}
//! {"id": 12, "method": "snapshot"}
//! ```
//!
//! `metrics`, `stats`, and `trace` are admin frames (loopback-gated like
//! `shutdown`): `metrics` returns the full registry in one frame —
//! Prometheus text exposition by default, the JSON snapshot with
//! `"format": "json"` — and `stats` returns a compact windowed summary
//! (req/s, windowed p50/p99, warm hit rate, SLO burn) computed by the
//! server's monitor thread. `snapshot` asks the monitor thread to write
//! an on-demand warm-state snapshot to the `--snapshot-out` path (404
//! when no path is configured). `trace` queries the tail-sampled store of
//! retained request traces: one trace by id (as a span-tree JSON object,
//! or with `"format": "chrome"` as a single-request Chrome-trace
//! document loadable in Perfetto), the N slowest retained, or every
//! retained error trace. Served explanation and batcher-side error
//! frames carry the request's `trace_id`, which is the join key.
//!
//! ## Responses
//!
//! Success frames carry `"ok": true` plus the explainer-shaped payload
//! (weights/intercept/local_prediction for LIME and SHAP, a rule string
//! plus precision/coverage for Anchor). Error frames carry `"ok": false`,
//! an HTTP-flavored `code`, a machine-readable `error` kind, and a
//! human-readable `message`:
//!
//! | code | error               | meaning                                    |
//! |------|---------------------|--------------------------------------------|
//! | 400  | `bad_request`       | unparseable JSON, unknown method, bad arity|
//! | 403  | `forbidden`         | admin frame from a non-loopback peer       |
//! | 404  | `row_out_of_range`  | row is not in the tenant's warm set        |
//! | 404  | `unknown_tenant`    | `tenant` names no tenant in the manifest   |
//! | 408  | `deadline_expired`  | queued past the request's `deadline_ms`    |
//! | 422  | `quarantined`       | tuple failed inside the resilience boundary|
//! | 429  | `overloaded`        | admission queue full — back off and retry  |
//! | 429  | `tenant_over_quota` | the tenant's in-flight quota is exhausted  |
//! | 503  | `shutting_down`     | server is draining; no new work accepted   |
//!
//! Multi-tenant servers route each explain by its optional `tenant`
//! field (absent → the manifest's default tenant); tenant-scoped error
//! frames (`unknown_tenant`, `tenant_over_quota`) carry the offending
//! tenant under a `tenant` key, and `ping`/`stats` frames gain a
//! per-tenant `tenants` array with each tenant's lifecycle state.

use std::sync::Arc;

use shahin::{Explanation, FailureKind, RequestTrace};
use shahin_obs::json::{escape, fmt_f64, Json};

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Explain one warm-set row.
    Explain {
        /// Client-chosen frame id, echoed on the response.
        id: u64,
        /// Global row index into the tenant's warm set.
        row: usize,
        /// Optional queue deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Tenant to route to; `None` → the cluster's default tenant.
        tenant: Option<String>,
    },
    /// Liveness probe.
    Ping {
        /// Client-chosen frame id.
        id: u64,
    },
    /// Admin: drain the queue and exit.
    Shutdown {
        /// Client-chosen frame id.
        id: u64,
    },
    /// Admin: scrape the full metrics registry in one frame.
    Metrics {
        /// Client-chosen frame id.
        id: u64,
        /// Requested exposition format.
        format: MetricsFormat,
    },
    /// Admin: compact windowed summary from the monitor thread.
    Stats {
        /// Client-chosen frame id.
        id: u64,
    },
    /// Admin: take an on-demand warm-state snapshot (requires
    /// `--snapshot-out`). The write happens on the monitor thread — the
    /// acknowledgement frame confirms the request was accepted, and the
    /// snapshot lands within one poll tick.
    Snapshot {
        /// Client-chosen frame id.
        id: u64,
    },
    /// Admin: fetch retained request traces from the tail-sampled store.
    Trace {
        /// Client-chosen frame id.
        id: u64,
        /// Which retained traces to fetch.
        query: TraceQuery,
        /// Requested rendering of the trace(s).
        format: TraceFormat,
    },
}

/// Selector of a `trace` admin frame — exactly one per request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceQuery {
    /// One trace by the id a response frame carried.
    ById(u64),
    /// The N slowest retained traces, slowest first.
    Slowest(usize),
    /// Every retained error/quarantined trace.
    Errors,
}

/// Rendering of a `trace` response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// The span-tree JSON object (the default).
    Json,
    /// A single-request Chrome-trace document (Perfetto-loadable); only
    /// valid with a `trace_id` selector.
    Chrome,
}

/// Exposition format of a `metrics` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text format (the default).
    Prometheus,
    /// The `MetricsSnapshot::to_json` document, inlined in the frame.
    Json,
}

impl MetricsFormat {
    /// Wire name of the format, echoed in the response frame.
    pub fn name(self) -> &'static str {
        match self {
            MetricsFormat::Prometheus => "prometheus",
            MetricsFormat::Json => "json",
        }
    }
}

/// The compact windowed summary behind the `stats` admin frame. All
/// rates and quantiles are computed over the monitor's retained windows,
/// not since process start; `None` quantiles mean no traffic landed in
/// the look-back period.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSummary {
    /// Wall time covered by the retained windows, seconds.
    pub window_secs: f64,
    /// Number of complete windows merged into this summary.
    pub windows: usize,
    /// Served requests per second over the window.
    pub req_per_s: f64,
    /// Windowed request-latency p50, nanoseconds.
    pub p50_ns: Option<u64>,
    /// Windowed request-latency p99, nanoseconds.
    pub p99_ns: Option<u64>,
    /// Warm-store hit rate over the window, in [0, 1] (0 when the store
    /// saw no lookups).
    pub hit_rate: f64,
    /// Admission-queue depth right now.
    pub queue_depth: u64,
    /// Live client connections right now.
    pub live_connections: u64,
    /// SLO burn rate (1.0 = burning budget exactly as fast as allowed).
    pub slo_burn_rate: f64,
    /// Fraction of the window's error budget remaining, in [0, 1].
    pub slo_budget_remaining: f64,
    /// Per-tenant lifecycle rows; empty on single-tenant servers (the
    /// frame schema is then unchanged from pre-tenancy builds).
    pub tenants: Vec<TenantStat>,
}

/// One tenant's row in `ping`/`stats` frames: lifecycle state plus the
/// tenant's share of the warm store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStat {
    /// Tenant name (the routing key).
    pub name: String,
    /// Lifecycle phase: `cold`, `warming`, `warm`, or `evicted`.
    pub state: &'static str,
    /// Warm-store entries held by this tenant (0 unless warm).
    pub entries: u64,
    /// Warm-store bytes held by this tenant (0 unless warm).
    pub bytes: u64,
    /// Explain requests currently in flight against the tenant's quota.
    pub inflight: u64,
}

fn tenants_json(tenants: &[TenantStat]) -> String {
    let mut out = String::from("[");
    for (i, t) in tenants.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"state\": \"{}\", \"entries\": {}, \"bytes\": {}, \
             \"inflight\": {}}}",
            escape(&t.name),
            t.state,
            t.entries,
            t.bytes,
            t.inflight
        ));
    }
    out.push(']');
    out
}

/// A typed error, rendered as an error frame.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// HTTP-flavored status code.
    pub code: u16,
    /// Machine-readable kind (stable identifier, e.g. `overloaded`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Tenant the error is scoped to (`unknown_tenant`,
    /// `tenant_over_quota`); rendered as a `tenant` key on the frame.
    pub tenant: Option<String>,
}

impl WireError {
    /// 400: unparseable or structurally invalid frame.
    pub fn bad_request(message: impl Into<String>) -> WireError {
        WireError {
            code: 400,
            kind: "bad_request",
            message: message.into(),
            tenant: None,
        }
    }

    /// 403: an admin frame from a peer that may not send one (remote
    /// admin is off by default; see `ServeConfig::allow_remote_shutdown`).
    pub fn forbidden() -> WireError {
        WireError {
            code: 403,
            kind: "forbidden",
            message: "admin frames are only accepted from loopback peers".into(),
            tenant: None,
        }
    }

    /// 404: the requested row is outside the warm set.
    pub fn row_out_of_range(row: usize, n_rows: usize) -> WireError {
        WireError {
            code: 404,
            kind: "row_out_of_range",
            message: format!("row {row} is outside the warm set (0..{n_rows})"),
            tenant: None,
        }
    }

    /// 404: no retained trace with the requested id (never retained,
    /// sampled out, or evicted by the ring bound).
    pub fn trace_not_found(trace_id: u64) -> WireError {
        WireError {
            code: 404,
            kind: "trace_not_found",
            message: format!("no retained trace with id {trace_id}"),
            tenant: None,
        }
    }

    /// 404: the server runs with tracing disabled (`--trace-store 0`).
    pub fn tracing_disabled() -> WireError {
        WireError {
            code: 404,
            kind: "tracing_disabled",
            message: "request tracing is disabled (--trace-store 0)".into(),
            tenant: None,
        }
    }

    /// 404: the server has nowhere to write snapshots
    /// (`--snapshot-out` not set).
    pub fn snapshots_disabled() -> WireError {
        WireError {
            code: 404,
            kind: "snapshots_disabled",
            message: "snapshots are disabled (--snapshot-out not set)".into(),
            tenant: None,
        }
    }

    /// 404: the request's `tenant` names no tenant in the manifest.
    pub fn unknown_tenant(tenant: &str) -> WireError {
        WireError {
            code: 404,
            kind: "unknown_tenant",
            message: format!("no tenant \"{tenant}\" in the manifest"),
            tenant: Some(tenant.to_string()),
        }
    }

    /// 429: the tenant's in-flight request quota is exhausted.
    pub fn tenant_over_quota(tenant: &str, quota: usize) -> WireError {
        WireError {
            code: 429,
            kind: "tenant_over_quota",
            message: format!("tenant \"{tenant}\" is at its quota ({quota} in flight)"),
            tenant: Some(tenant.to_string()),
        }
    }

    /// 408: the request's deadline expired while it was queued.
    pub fn deadline_expired() -> WireError {
        WireError {
            code: 408,
            kind: "deadline_expired",
            message: "deadline expired while queued".into(),
            tenant: None,
        }
    }

    /// 422: the tuple was quarantined by the resilience boundary.
    pub fn quarantined(kind: FailureKind, message: &str) -> WireError {
        WireError {
            code: 422,
            kind: "quarantined",
            message: format!("{}: {message}", kind.name()),
            tenant: None,
        }
    }

    /// 429: the admission queue is full.
    pub fn overloaded(capacity: usize) -> WireError {
        WireError {
            code: 429,
            kind: "overloaded",
            message: format!("admission queue full ({capacity} requests)"),
            tenant: None,
        }
    }

    /// 503: the server is draining.
    pub fn shutting_down() -> WireError {
        WireError {
            code: 503,
            kind: "shutting_down",
            message: "server is draining; connection will close".into(),
            tenant: None,
        }
    }
}

/// Parses one request line. `Err` carries the typed error frame to send
/// back — the connection stays alive either way.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let value =
        Json::parse(line.trim()).map_err(|e| WireError::bad_request(format!("bad JSON: {e}")))?;
    let obj = value
        .as_obj()
        .ok_or_else(|| WireError::bad_request("request frame must be a JSON object"))?;
    for key in obj.keys() {
        if !matches!(
            key.as_str(),
            "id" | "method"
                | "row"
                | "deadline_ms"
                | "tenant"
                | "format"
                | "trace_id"
                | "slowest"
                | "errors"
        ) {
            return Err(WireError::bad_request(format!("unknown key \"{key}\"")));
        }
    }
    let id = match value.get("id") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| WireError::bad_request("\"id\" must be a non-negative integer"))?,
    };
    let method = value
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::bad_request("missing \"method\" string"))?;
    let has_trace_selector = value.get("trace_id").is_some()
        || value.get("slowest").is_some()
        || value.get("errors").is_some();
    if has_trace_selector && method != "trace" {
        return Err(WireError::bad_request(format!(
            "trace selectors only apply to \"trace\", not \"{method}\""
        )));
    }
    if value.get("tenant").is_some() && method != "explain" {
        return Err(WireError::bad_request(format!(
            "\"tenant\" only applies to \"explain\", not \"{method}\""
        )));
    }
    match method {
        "explain" => {
            if value.get("format").is_some() {
                return Err(WireError::bad_request(
                    "\"format\" only applies to \"metrics\" and \"trace\"",
                ));
            }
            let row = value
                .get("row")
                .ok_or_else(|| WireError::bad_request("explain needs a \"row\" integer"))?
                .as_u64()
                .ok_or_else(|| WireError::bad_request("\"row\" must be a non-negative integer"))?;
            let deadline_ms = match value.get("deadline_ms") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    WireError::bad_request("\"deadline_ms\" must be a non-negative integer")
                })?),
            };
            let tenant = match value.get("tenant") {
                None => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or_else(|| WireError::bad_request("\"tenant\" must be a string"))?
                        .to_string(),
                ),
            };
            Ok(Request::Explain {
                id,
                row: row as usize,
                deadline_ms,
                tenant,
            })
        }
        "ping" | "shutdown" | "stats" | "snapshot" => {
            if value.get("row").is_some()
                || value.get("deadline_ms").is_some()
                || value.get("format").is_some()
            {
                return Err(WireError::bad_request(format!(
                    "\"{method}\" takes no parameters"
                )));
            }
            Ok(match method {
                "ping" => Request::Ping { id },
                "shutdown" => Request::Shutdown { id },
                "stats" => Request::Stats { id },
                _ => Request::Snapshot { id },
            })
        }
        "metrics" => {
            if value.get("row").is_some() || value.get("deadline_ms").is_some() {
                return Err(WireError::bad_request(
                    "\"metrics\" takes only an optional \"format\"",
                ));
            }
            let format = match value.get("format") {
                None => MetricsFormat::Prometheus,
                Some(v) => match v.as_str() {
                    Some("prometheus") => MetricsFormat::Prometheus,
                    Some("json") => MetricsFormat::Json,
                    _ => {
                        return Err(WireError::bad_request(
                            "\"format\" must be \"prometheus\" or \"json\"",
                        ))
                    }
                },
            };
            Ok(Request::Metrics { id, format })
        }
        "trace" => {
            if value.get("row").is_some() || value.get("deadline_ms").is_some() {
                return Err(WireError::bad_request(
                    "\"trace\" takes one selector and an optional \"format\"",
                ));
            }
            let by_id = match value.get("trace_id") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    WireError::bad_request("\"trace_id\" must be a non-negative integer")
                })?),
            };
            let slowest = match value.get("slowest") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    WireError::bad_request("\"slowest\" must be a non-negative integer")
                })?),
            };
            let errors = match value.get("errors") {
                None => false,
                Some(v) => match v.as_bool() {
                    Some(true) => true,
                    Some(false) => {
                        return Err(WireError::bad_request(
                            "\"errors\" must be true when present",
                        ))
                    }
                    None => return Err(WireError::bad_request("\"errors\" must be a boolean")),
                },
            };
            let query = match (by_id, slowest, errors) {
                (Some(trace_id), None, false) => TraceQuery::ById(trace_id),
                (None, Some(n), false) => TraceQuery::Slowest(n as usize),
                (None, None, true) => TraceQuery::Errors,
                _ => {
                    return Err(WireError::bad_request(
                        "\"trace\" needs exactly one of \"trace_id\", \"slowest\", \"errors\"",
                    ))
                }
            };
            let format = match value.get("format") {
                None => TraceFormat::Json,
                Some(v) => match v.as_str() {
                    Some("json") => TraceFormat::Json,
                    Some("chrome") => TraceFormat::Chrome,
                    _ => {
                        return Err(WireError::bad_request(
                            "\"format\" must be \"json\" or \"chrome\"",
                        ))
                    }
                },
            };
            if format == TraceFormat::Chrome && !matches!(query, TraceQuery::ById(_)) {
                return Err(WireError::bad_request(
                    "\"chrome\" format needs a \"trace_id\" selector",
                ));
            }
            Ok(Request::Trace { id, query, format })
        }
        other => Err(WireError::bad_request(format!(
            "unknown method \"{other}\""
        ))),
    }
}

/// Best-effort extraction of a frame's `id` so an error frame can echo
/// it even when the frame is otherwise invalid; 0 when unparseable.
pub fn parse_frame_id(line: &str) -> u64 {
    Json::parse(line.trim())
        .ok()
        .and_then(|v| v.get("id").and_then(Json::as_u64))
        .unwrap_or(0)
}

/// Renders an error frame (no trailing newline).
pub fn error_frame(id: u64, err: &WireError) -> String {
    error_frame_traced(id, err, None)
}

/// Renders an error frame carrying the request's trace id, the join key
/// for the `trace` admin frame (error traces are always retained).
pub fn error_frame_traced(id: u64, err: &WireError, trace_id: Option<u64>) -> String {
    let mut out = format!(
        "{{\"id\": {id}, \"ok\": false, \"code\": {}, \"error\": \"{}\", \"message\": \"{}\"",
        err.code,
        escape(err.kind),
        escape(&err.message)
    );
    if let Some(tenant) = &err.tenant {
        out.push_str(&format!(", \"tenant\": \"{}\"", escape(tenant)));
    }
    if let Some(trace_id) = trace_id {
        out.push_str(&format!(", \"trace_id\": {trace_id}"));
    }
    out.push('}');
    out
}

/// Renders a success frame for one served explanation (no trailing
/// newline). `epoch` is the refresh epoch the tuple was explained in;
/// `trace_id` joins the frame against its retained request trace (absent
/// when tracing is off).
pub fn explanation_frame(
    id: u64,
    row: usize,
    explanation: &Explanation,
    degraded: bool,
    epoch: u64,
    trace_id: Option<u64>,
) -> String {
    let mut out = format!("{{\"id\": {id}, \"ok\": true, \"row\": {row}, ");
    match explanation {
        Explanation::Weights(w) => {
            out.push_str("\"weights\": [");
            for (i, v) in w.weights.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&fmt_f64(*v));
            }
            out.push_str(&format!(
                "], \"intercept\": {}, \"local_prediction\": {}",
                fmt_f64(w.intercept),
                fmt_f64(w.local_prediction)
            ));
        }
        Explanation::Rule(r) => {
            out.push_str(&format!(
                "\"rule\": \"{}\", \"precision\": {}, \"coverage\": {}, \"anchored_class\": {}",
                escape(&r.rule.to_string()),
                fmt_f64(r.precision),
                fmt_f64(r.coverage),
                r.anchored_class
            ));
        }
    }
    out.push_str(&format!(", \"degraded\": {degraded}, \"epoch\": {epoch}"));
    if let Some(trace_id) = trace_id {
        out.push_str(&format!(", \"trace_id\": {trace_id}"));
    }
    out.push('}');
    out
}

/// Renders the pong frame. Beyond liveness it carries enough signal for
/// a health check to act on: process uptime, the build version, and the
/// warm-store entry count (0 would mean the repository the whole service
/// exists to exploit is gone). Multi-tenant servers pass per-tenant
/// lifecycle rows — `warm_entries` is then the cluster-wide sum and
/// `tenants` breaks it down; single-tenant servers pass `&[]` and the
/// frame schema is unchanged.
pub fn pong_frame(
    id: u64,
    uptime_secs: u64,
    version: &str,
    warm_entries: usize,
    tenants: &[TenantStat],
) -> String {
    let mut out = format!(
        "{{\"id\": {id}, \"ok\": true, \"pong\": true, \"uptime_secs\": {uptime_secs}, \
         \"version\": \"{}\", \"warm_entries\": {warm_entries}",
        escape(version)
    );
    if !tenants.is_empty() {
        out.push_str(&format!(", \"tenants\": {}", tenants_json(tenants)));
    }
    out.push('}');
    out
}

/// Renders the shutdown acknowledgement frame.
pub fn shutdown_frame(id: u64) -> String {
    format!("{{\"id\": {id}, \"ok\": true, \"shutting_down\": true}}")
}

/// Renders the snapshot acknowledgement frame: the request was accepted
/// and the monitor thread will write `path` within one poll tick.
pub fn snapshot_frame(id: u64, path: &str) -> String {
    format!(
        "{{\"id\": {id}, \"ok\": true, \"snapshot_requested\": true, \"path\": \"{}\"}}",
        escape(path)
    )
}

/// Renders a `metrics` response frame. The Prometheus exposition text
/// travels as one escaped JSON string under `"metrics"`; the JSON
/// snapshot is inlined as a nested object under `"snapshot"` (the
/// snapshot document's newlines are structural, so collapsing them keeps
/// it valid while preserving the one-frame-per-line protocol).
pub fn metrics_frame(id: u64, format: MetricsFormat, body: &str) -> String {
    match format {
        MetricsFormat::Prometheus => format!(
            "{{\"id\": {id}, \"ok\": true, \"format\": \"prometheus\", \"metrics\": \"{}\"}}",
            escape(body)
        ),
        MetricsFormat::Json => format!(
            "{{\"id\": {id}, \"ok\": true, \"format\": \"json\", \"snapshot\": {}}}",
            body.replace('\n', " ")
        ),
    }
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// Renders a `stats` response frame from the monitor's windowed summary.
/// Multi-tenant summaries append a per-tenant `tenants` array; the
/// single-tenant schema is unchanged.
pub fn stats_frame(id: u64, s: &StatsSummary) -> String {
    let mut out = format!(
        "{{\"id\": {id}, \"ok\": true, \"stats\": {{\
         \"window_secs\": {}, \"windows\": {}, \"req_per_s\": {}, \
         \"p50_ns\": {}, \"p99_ns\": {}, \"hit_rate\": {}, \
         \"queue_depth\": {}, \"live_connections\": {}, \
         \"slo\": {{\"burn_rate\": {}, \"budget_remaining\": {}}}",
        fmt_f64(s.window_secs),
        s.windows,
        fmt_f64(s.req_per_s),
        fmt_opt_u64(s.p50_ns),
        fmt_opt_u64(s.p99_ns),
        fmt_f64(s.hit_rate),
        s.queue_depth,
        s.live_connections,
        fmt_f64(s.slo_burn_rate),
        fmt_f64(s.slo_budget_remaining),
    );
    if !s.tenants.is_empty() {
        out.push_str(&format!(", \"tenants\": {}", tenants_json(&s.tenants)));
    }
    out.push_str("}}");
    out
}

/// Retention totals of the trace store, attached to multi-trace
/// responses so a scraper can judge coverage (how much the tail-sampling
/// policy kept vs sampled out vs evicted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Traces in the ring right now.
    pub len: u64,
    /// Traces retained since start (monotonic).
    pub retained: u64,
    /// Traces sampled out by the tail policy.
    pub dropped: u64,
    /// Retained traces later pushed out by the ring bound.
    pub evicted: u64,
}

/// Renders a single-trace `trace` response frame. The span tree is
/// inlined as a nested object; the Chrome-trace rendering collapses its
/// structural newlines, like the JSON `metrics` frame.
pub fn trace_frame(id: u64, trace: &RequestTrace, format: TraceFormat) -> String {
    match format {
        TraceFormat::Json => format!(
            "{{\"id\": {id}, \"ok\": true, \"format\": \"json\", \"trace\": {}}}",
            trace.to_json()
        ),
        TraceFormat::Chrome => format!(
            "{{\"id\": {id}, \"ok\": true, \"format\": \"chrome\", \"chrome_trace\": {}}}",
            trace.to_chrome_trace().replace('\n', " ").trim_end()
        ),
    }
}

/// Renders a multi-trace `trace` response frame (`slowest`/`errors`
/// selectors), traces in the selector's order plus the store's
/// retention totals.
pub fn traces_frame(id: u64, traces: &[Arc<RequestTrace>], stats: TraceStoreStats) -> String {
    let mut out = format!("{{\"id\": {id}, \"ok\": true, \"traces\": [");
    for (i, t) in traces.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&t.to_json());
    }
    out.push_str(&format!(
        "], \"store\": {{\"len\": {}, \"retained\": {}, \"dropped\": {}, \"evicted\": {}}}}}",
        stats.len, stats.retained, stats.dropped, stats.evicted
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_requests() {
        assert_eq!(
            parse_request("{\"id\": 7, \"method\": \"explain\", \"row\": 12}").unwrap(),
            Request::Explain {
                id: 7,
                row: 12,
                deadline_ms: None,
                tenant: None
            }
        );
        assert_eq!(
            parse_request("{\"id\":1,\"method\":\"explain\",\"row\":0,\"deadline_ms\":250}")
                .unwrap(),
            Request::Explain {
                id: 1,
                row: 0,
                deadline_ms: Some(250),
                tenant: None
            }
        );
        assert_eq!(
            parse_request("{\"id\": 2, \"method\": \"explain\", \"row\": 4, \"tenant\": \"acme\"}")
                .unwrap(),
            Request::Explain {
                id: 2,
                row: 4,
                deadline_ms: None,
                tenant: Some("acme".into())
            }
        );
        assert_eq!(
            parse_request("{\"method\": \"ping\"}").unwrap(),
            Request::Ping { id: 0 }
        );
        assert_eq!(
            parse_request("  {\"id\": 3, \"method\": \"shutdown\"}\n").unwrap(),
            Request::Shutdown { id: 3 }
        );
    }

    #[test]
    fn bad_json_yields_a_400_frame() {
        for line in ["", "{", "not json", "[1, 2", "{\"id\": } "] {
            let err = parse_request(line).unwrap_err();
            assert_eq!(err.code, 400, "line {line:?}");
            assert_eq!(err.kind, "bad_request");
        }
    }

    #[test]
    fn deeply_nested_frames_yield_a_400_frame_not_a_crash() {
        // The parser runs on untrusted socket bytes: pathological
        // nesting must come back as a typed error, never overflow the
        // reader thread's stack.
        let line = format!("{}{}", "[".repeat(50_000), "]".repeat(50_000));
        let err = parse_request(&line).unwrap_err();
        assert_eq!(err.code, 400);
        assert_eq!(err.kind, "bad_request");
        let line = format!("{}1{}", "{\"k\":".repeat(50_000), "}".repeat(50_000));
        assert_eq!(parse_request(&line).unwrap_err().code, 400);
        // parse_frame_id on the same garbage stays total too.
        assert_eq!(parse_frame_id(&line), 0);
    }

    #[test]
    fn unknown_method_yields_a_400_frame() {
        let err = parse_request("{\"id\": 1, \"method\": \"explode\"}").unwrap_err();
        assert_eq!(err.code, 400);
        assert!(err.message.contains("unknown method"));
        assert!(err.message.contains("explode"));
    }

    #[test]
    fn wrong_arity_and_types_yield_400_frames() {
        // Missing required parameter.
        let err = parse_request("{\"id\": 1, \"method\": \"explain\"}").unwrap_err();
        assert!(err.message.contains("row"));
        // Wrong parameter type.
        let err =
            parse_request("{\"id\": 1, \"method\": \"explain\", \"row\": \"five\"}").unwrap_err();
        assert_eq!(err.code, 400);
        // Negative row.
        let err = parse_request("{\"id\": 1, \"method\": \"explain\", \"row\": -3}").unwrap_err();
        assert_eq!(err.code, 400);
        // Extra parameters on a nullary method.
        let err = parse_request("{\"id\": 1, \"method\": \"ping\", \"row\": 2}").unwrap_err();
        assert!(err.message.contains("takes no parameters"));
        // Unknown keys are rejected rather than silently dropped.
        let err = parse_request("{\"id\": 1, \"method\": \"explain\", \"row\": 1, \"rwo\": 2}")
            .unwrap_err();
        assert!(err.message.contains("rwo"));
        // Non-object frames.
        let err = parse_request("[1, 2, 3]").unwrap_err();
        assert!(err.message.contains("object"));
        // Non-integer id.
        let err = parse_request("{\"id\": \"x\", \"method\": \"ping\"}").unwrap_err();
        assert!(err.message.contains("id"));
    }

    #[test]
    fn error_frames_are_valid_json_with_the_taxonomy_fields() {
        let frames = [
            error_frame(1, &WireError::bad_request("broken \"quote\"")),
            error_frame(2, &WireError::forbidden()),
            error_frame(3, &WireError::row_out_of_range(9, 5)),
            error_frame(4, &WireError::deadline_expired()),
            error_frame(5, &WireError::quarantined(FailureKind::Panic, "boom")),
            error_frame(6, &WireError::overloaded(64)),
            error_frame(7, &WireError::shutting_down()),
        ];
        let codes = [400, 403, 404, 408, 422, 429, 503];
        for (frame, code) in frames.iter().zip(codes) {
            let v = Json::parse(frame).expect("error frame parses");
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
            assert_eq!(v.get("code").unwrap().as_u64(), Some(code));
            assert!(v.get("error").unwrap().as_str().is_some());
            assert!(v.get("message").unwrap().as_str().is_some());
        }
    }

    #[test]
    fn explanation_frames_round_trip_weights_exactly() {
        use shahin_explain::FeatureWeights;
        let w = FeatureWeights {
            weights: vec![0.1, -2.5e-7, 3.0],
            intercept: 0.25,
            local_prediction: 0.75,
        };
        let frame = explanation_frame(9, 4, &Explanation::Weights(w.clone()), false, 2, Some(31));
        let v = Json::parse(&frame).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("row").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("degraded").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("trace_id").unwrap().as_u64(), Some(31));
        let untraced = explanation_frame(9, 4, &Explanation::Weights(w.clone()), false, 2, None);
        assert!(Json::parse(&untraced).unwrap().get("trace_id").is_none());
        let parsed: Vec<f64> = v
            .get("weights")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        for (a, b) in parsed.iter().zip(&w.weights) {
            assert_eq!(a.to_bits(), b.to_bits(), "weights must be bit-identical");
        }
        assert_eq!(v.get("intercept").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(
            Json::parse(&pong_frame(5, 0, "0.1.0", 0, &[]))
                .unwrap()
                .get("pong")
                .unwrap(),
            &Json::Bool(true)
        );
        assert_eq!(
            Json::parse(&shutdown_frame(6))
                .unwrap()
                .get("shutting_down")
                .unwrap(),
            &Json::Bool(true)
        );
    }

    #[test]
    fn parses_snapshot_requests_and_enforces_arity() {
        assert_eq!(
            parse_request("{\"id\": 12, \"method\": \"snapshot\"}").unwrap(),
            Request::Snapshot { id: 12 }
        );
        let err = parse_request("{\"id\": 1, \"method\": \"snapshot\", \"row\": 2}").unwrap_err();
        assert!(err.message.contains("takes no parameters"));
        let frame = snapshot_frame(12, "/var/lib/shahin/warm.snap");
        assert!(!frame.contains('\n'), "frames must be single-line");
        let v = Json::parse(&frame).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("snapshot_requested").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("path").unwrap().as_str(),
            Some("/var/lib/shahin/warm.snap")
        );
        let err = WireError::snapshots_disabled();
        assert_eq!(err.code, 404);
        assert_eq!(err.kind, "snapshots_disabled");
    }

    #[test]
    fn pong_frame_carries_health_signal() {
        let v = Json::parse(&pong_frame(9, 321, "0.1.0", 200, &[])).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("uptime_secs").unwrap().as_u64(), Some(321));
        assert_eq!(v.get("version").unwrap().as_str(), Some("0.1.0"));
        assert_eq!(v.get("warm_entries").unwrap().as_u64(), Some(200));
        assert!(
            v.get("tenants").is_none(),
            "single-tenant pong schema is unchanged"
        );
    }

    #[test]
    fn tenant_arity_and_types_are_enforced() {
        // tenant must be a string.
        let err = parse_request("{\"id\": 1, \"method\": \"explain\", \"row\": 1, \"tenant\": 3}")
            .unwrap_err();
        assert_eq!(err.code, 400);
        assert!(err.message.contains("tenant"));
        // tenant only applies to explain.
        let err =
            parse_request("{\"id\": 1, \"method\": \"ping\", \"tenant\": \"acme\"}").unwrap_err();
        assert!(err.message.contains("only applies to \"explain\""));
        let err =
            parse_request("{\"id\": 1, \"method\": \"stats\", \"tenant\": \"acme\"}").unwrap_err();
        assert!(err.message.contains("only applies to \"explain\""));
    }

    #[test]
    fn tenant_scoped_errors_carry_the_tenant_key() {
        let err = WireError::unknown_tenant("hooli");
        assert_eq!((err.code, err.kind), (404, "unknown_tenant"));
        let v = Json::parse(&error_frame(3, &err)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_u64(), Some(404));
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("hooli"));

        let err = WireError::tenant_over_quota("acme", 8);
        assert_eq!((err.code, err.kind), (429, "tenant_over_quota"));
        let v = Json::parse(&error_frame(4, &err)).unwrap();
        assert_eq!(v.get("code").unwrap().as_u64(), Some(429));
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("acme"));
        assert!(v.get("message").unwrap().as_str().unwrap().contains("8"));

        // Tenant-less errors keep the pre-tenancy schema.
        let v = Json::parse(&error_frame(5, &WireError::overloaded(64))).unwrap();
        assert!(v.get("tenant").is_none());
    }

    #[test]
    fn multi_tenant_ping_and_stats_frames_carry_tenant_rows() {
        let tenants = vec![
            TenantStat {
                name: "acme".into(),
                state: "warm",
                entries: 24,
                bytes: 4096,
                inflight: 2,
            },
            TenantStat {
                name: "globex".into(),
                state: "cold",
                entries: 0,
                bytes: 0,
                inflight: 0,
            },
        ];
        let v = Json::parse(&pong_frame(9, 1, "0.1.0", 24, &tenants)).unwrap();
        let rows = v.get("tenants").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("name").unwrap().as_str(), Some("acme"));
        assert_eq!(rows[0].get("state").unwrap().as_str(), Some("warm"));
        assert_eq!(rows[0].get("entries").unwrap().as_u64(), Some(24));
        assert_eq!(rows[0].get("inflight").unwrap().as_u64(), Some(2));
        assert_eq!(rows[1].get("state").unwrap().as_str(), Some("cold"));

        let s = StatsSummary {
            tenants,
            ..StatsSummary::default()
        };
        let frame = stats_frame(11, &s);
        assert!(!frame.contains('\n'), "frames must be single-line");
        let v = Json::parse(&frame).unwrap();
        let rows = v.get("stats").unwrap().get("tenants").unwrap();
        assert_eq!(rows.as_arr().unwrap().len(), 2);
        // Single-tenant stats keep the pre-tenancy schema.
        let v = Json::parse(&stats_frame(12, &StatsSummary::default())).unwrap();
        assert!(v.get("stats").unwrap().get("tenants").is_none());
    }

    #[test]
    fn parses_metrics_and_stats_requests() {
        assert_eq!(
            parse_request("{\"id\": 1, \"method\": \"metrics\"}").unwrap(),
            Request::Metrics {
                id: 1,
                format: MetricsFormat::Prometheus
            }
        );
        assert_eq!(
            parse_request("{\"id\": 2, \"method\": \"metrics\", \"format\": \"json\"}").unwrap(),
            Request::Metrics {
                id: 2,
                format: MetricsFormat::Json
            }
        );
        assert_eq!(
            parse_request("{\"id\": 3, \"method\": \"metrics\", \"format\": \"prometheus\"}")
                .unwrap(),
            Request::Metrics {
                id: 3,
                format: MetricsFormat::Prometheus
            }
        );
        assert_eq!(
            parse_request("{\"id\": 4, \"method\": \"stats\"}").unwrap(),
            Request::Stats { id: 4 }
        );
    }

    #[test]
    fn metrics_and_stats_arity_is_enforced() {
        // Unknown format value.
        let err =
            parse_request("{\"id\": 1, \"method\": \"metrics\", \"format\": \"xml\"}").unwrap_err();
        assert_eq!(err.code, 400);
        assert!(err.message.contains("prometheus"));
        // Non-string format.
        let err = parse_request("{\"id\": 1, \"method\": \"metrics\", \"format\": 3}").unwrap_err();
        assert_eq!(err.code, 400);
        // metrics rejects explain parameters.
        let err = parse_request("{\"id\": 1, \"method\": \"metrics\", \"row\": 2}").unwrap_err();
        assert_eq!(err.code, 400);
        // stats is nullary, including format.
        let err =
            parse_request("{\"id\": 1, \"method\": \"stats\", \"format\": \"json\"}").unwrap_err();
        assert!(err.message.contains("takes no parameters"));
        // format on explain is rejected even though the key is known.
        let err =
            parse_request("{\"id\": 1, \"method\": \"explain\", \"row\": 1, \"format\": \"json\"}")
                .unwrap_err();
        assert!(err.message.contains("format"));
    }

    #[test]
    fn metrics_frames_round_trip_both_formats() {
        let text = "# TYPE serve_requests_total counter\nserve_requests_total 42\n";
        let frame = metrics_frame(7, MetricsFormat::Prometheus, text);
        assert!(!frame.contains('\n'), "frames must be single-line");
        let v = Json::parse(&frame).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("format").unwrap().as_str(), Some("prometheus"));
        assert_eq!(v.get("metrics").unwrap().as_str(), Some(text));

        let snapshot_json = shahin_obs::MetricsRegistry::new().snapshot().to_json();
        let frame = metrics_frame(8, MetricsFormat::Json, &snapshot_json);
        assert!(!frame.contains('\n'));
        let v = Json::parse(&frame).unwrap();
        assert_eq!(v.get("format").unwrap().as_str(), Some("json"));
        assert!(v.get("snapshot").unwrap().get("counters").is_some());
    }

    #[test]
    fn parses_trace_requests() {
        assert_eq!(
            parse_request("{\"id\": 1, \"method\": \"trace\", \"trace_id\": 42}").unwrap(),
            Request::Trace {
                id: 1,
                query: TraceQuery::ById(42),
                format: TraceFormat::Json
            }
        );
        assert_eq!(
            parse_request(
                "{\"id\": 2, \"method\": \"trace\", \"trace_id\": 42, \"format\": \"chrome\"}"
            )
            .unwrap(),
            Request::Trace {
                id: 2,
                query: TraceQuery::ById(42),
                format: TraceFormat::Chrome
            }
        );
        assert_eq!(
            parse_request("{\"id\": 3, \"method\": \"trace\", \"slowest\": 5}").unwrap(),
            Request::Trace {
                id: 3,
                query: TraceQuery::Slowest(5),
                format: TraceFormat::Json
            }
        );
        assert_eq!(
            parse_request("{\"id\": 4, \"method\": \"trace\", \"errors\": true}").unwrap(),
            Request::Trace {
                id: 4,
                query: TraceQuery::Errors,
                format: TraceFormat::Json
            }
        );
    }

    #[test]
    fn trace_arity_is_enforced() {
        // No selector.
        let err = parse_request("{\"id\": 1, \"method\": \"trace\"}").unwrap_err();
        assert!(err.message.contains("exactly one"));
        // Two selectors.
        let err =
            parse_request("{\"id\": 1, \"method\": \"trace\", \"trace_id\": 1, \"slowest\": 2}")
                .unwrap_err();
        assert!(err.message.contains("exactly one"));
        // errors must be literally true.
        let err =
            parse_request("{\"id\": 1, \"method\": \"trace\", \"errors\": false}").unwrap_err();
        assert!(err.message.contains("true"));
        // Chrome rendering is single-trace only.
        let err = parse_request(
            "{\"id\": 1, \"method\": \"trace\", \"slowest\": 3, \"format\": \"chrome\"}",
        )
        .unwrap_err();
        assert!(err.message.contains("trace_id"));
        // Unknown format value.
        let err = parse_request(
            "{\"id\": 1, \"method\": \"trace\", \"trace_id\": 1, \"format\": \"xml\"}",
        )
        .unwrap_err();
        assert!(err.message.contains("chrome"));
        // Trace selectors are rejected on other methods.
        let err = parse_request("{\"id\": 1, \"method\": \"explain\", \"row\": 1, \"trace_id\": 2}")
            .unwrap_err();
        assert!(err.message.contains("trace selectors"));
        let err = parse_request("{\"id\": 1, \"method\": \"stats\", \"errors\": true}").unwrap_err();
        assert!(err.message.contains("trace selectors"));
        // Explain parameters are rejected on trace.
        let err = parse_request("{\"id\": 1, \"method\": \"trace\", \"trace_id\": 1, \"row\": 2}")
            .unwrap_err();
        assert!(err.message.contains("selector"));
    }

    fn sample_trace(trace_id: u64) -> RequestTrace {
        use shahin::{TraceCounters, TraceSpan};
        RequestTrace {
            trace_id,
            request_id: 7,
            row: 4,
            batch_id: Some(2),
            tenant: None,
            spans: vec![
                TraceSpan {
                    name: Arc::from("request"),
                    parent: None,
                    start_ns: 0,
                    dur_ns: 900,
                },
                TraceSpan {
                    name: Arc::from("queue"),
                    parent: Some(0),
                    start_ns: 0,
                    dur_ns: 300,
                },
            ],
            counters: TraceCounters::default(),
            error: false,
            quarantined: false,
            degraded: false,
            total_ns: 900,
        }
    }

    #[test]
    fn trace_frames_round_trip_both_formats() {
        let t = sample_trace(42);
        let frame = trace_frame(5, &t, TraceFormat::Json);
        assert!(!frame.contains('\n'), "frames must be single-line");
        let v = Json::parse(&frame).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("format").unwrap().as_str(), Some("json"));
        let trace = v.get("trace").unwrap();
        assert_eq!(trace.get("trace_id").unwrap().as_u64(), Some(42));
        assert_eq!(
            trace.get("spans").unwrap().as_arr().unwrap().len(),
            2
        );

        let frame = trace_frame(6, &t, TraceFormat::Chrome);
        assert!(!frame.contains('\n'));
        let v = Json::parse(&frame).unwrap();
        assert_eq!(v.get("format").unwrap().as_str(), Some("chrome"));
        let doc = v.get("chrome_trace").unwrap();
        assert!(
            !doc.get("traceEvents").unwrap().as_arr().unwrap().is_empty(),
            "chrome document must inline its events"
        );
    }

    #[test]
    fn traces_frame_carries_store_totals() {
        let frame = traces_frame(
            9,
            &[Arc::new(sample_trace(1)), Arc::new(sample_trace(2))],
            TraceStoreStats {
                len: 2,
                retained: 5,
                dropped: 40,
                evicted: 3,
            },
        );
        assert!(!frame.contains('\n'));
        let v = Json::parse(&frame).unwrap();
        let traces = v.get("traces").unwrap().as_arr().unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[1].get("trace_id").unwrap().as_u64(), Some(2));
        let store = v.get("store").unwrap();
        assert_eq!(store.get("len").unwrap().as_u64(), Some(2));
        assert_eq!(store.get("retained").unwrap().as_u64(), Some(5));
        assert_eq!(store.get("dropped").unwrap().as_u64(), Some(40));
        assert_eq!(store.get("evicted").unwrap().as_u64(), Some(3));
        // Empty result set is still a well-formed frame.
        let empty = traces_frame(10, &[], TraceStoreStats::default());
        assert!(Json::parse(&empty)
            .unwrap()
            .get("traces")
            .unwrap()
            .as_arr()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn stats_frame_schema_is_stable() {
        let s = StatsSummary {
            window_secs: 2.5,
            windows: 5,
            req_per_s: 12.0,
            p50_ns: Some(1_023),
            p99_ns: None,
            hit_rate: 0.875,
            queue_depth: 3,
            live_connections: 2,
            slo_burn_rate: 0.25,
            slo_budget_remaining: 0.75,
            tenants: Vec::new(),
        };
        let v = Json::parse(&stats_frame(11, &s)).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(11));
        let stats = v.get("stats").unwrap();
        // Single-tenant: no tenants key at all (pre-tenancy schema).
        assert!(stats.get("tenants").is_none());
        assert_eq!(stats.get("window_secs").unwrap().as_f64(), Some(2.5));
        assert_eq!(stats.get("windows").unwrap().as_u64(), Some(5));
        assert_eq!(stats.get("req_per_s").unwrap().as_f64(), Some(12.0));
        assert_eq!(stats.get("p50_ns").unwrap().as_u64(), Some(1_023));
        assert_eq!(stats.get("p99_ns").unwrap(), &Json::Null);
        assert_eq!(stats.get("hit_rate").unwrap().as_f64(), Some(0.875));
        assert_eq!(stats.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("live_connections").unwrap().as_u64(), Some(2));
        let slo = stats.get("slo").unwrap();
        assert_eq!(slo.get("burn_rate").unwrap().as_f64(), Some(0.25));
        assert_eq!(slo.get("budget_remaining").unwrap().as_f64(), Some(0.75));
    }
}
