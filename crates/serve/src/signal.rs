//! Minimal SIGINT/SIGTERM watching without a signal-handling crate.
//!
//! The handler only flips a process-global atomic; the acceptor loop
//! polls [`requested`] and starts a graceful drain when it trips. This
//! keeps the handler trivially async-signal-safe (a relaxed store) and
//! the crate std-only.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether a watched signal has been delivered.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Test hook: arm the flag as if a signal had arrived.
pub fn raise() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: nothing but an atomic store.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs the SIGINT and SIGTERM handlers (idempotent; unix only — a
/// no-op elsewhere, where only [`raise`] or an admin `shutdown` frame can
/// trigger a drain).
pub fn install() {
    #[cfg(unix)]
    {
        // libc's `signal` entry point, declared directly so the crate
        // stays dependency-free. Handler slot is a plain function
        // pointer (usize) per the C ABI.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_trips_the_flag_and_install_is_idempotent() {
        install();
        install();
        raise();
        assert!(requested());
    }
}
