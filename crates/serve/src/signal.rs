//! Minimal SIGINT/SIGTERM/SIGUSR1 watching without a signal-handling
//! crate.
//!
//! Handlers only flip process-global atomics; the acceptor loop polls
//! [`requested`] and starts a graceful drain when the shutdown flag
//! trips, and the monitor thread polls [`snapshot_requested`] to take an
//! on-demand warm-state snapshot when SIGUSR1 arrives. This keeps the
//! handlers trivially async-signal-safe (a relaxed store) and the crate
//! std-only.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static SNAPSHOT: AtomicBool = AtomicBool::new(false);

/// Whether a watched shutdown signal has been delivered.
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Relaxed)
}

/// Consumes a pending SIGUSR1 snapshot request (one snapshot per
/// delivery): returns `true` at most once per signal.
pub fn snapshot_requested() -> bool {
    SNAPSHOT.swap(false, Ordering::Relaxed)
}

/// Whether a SIGUSR1 snapshot request is pending, without consuming it —
/// lets the monitor's sleep loop wake early for the request its next
/// iteration will consume.
pub fn snapshot_pending() -> bool {
    SNAPSHOT.load(Ordering::Relaxed)
}

/// Test hook: arm the shutdown flag as if a signal had arrived.
pub fn raise() {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Test hook: arm the snapshot flag as if SIGUSR1 had arrived.
pub fn raise_snapshot() {
    SNAPSHOT.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: nothing but an atomic store.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_snapshot_signal(_signum: i32) {
    // Async-signal-safe: nothing but an atomic store.
    SNAPSHOT.store(true, Ordering::Relaxed);
}

/// Installs the SIGINT/SIGTERM drain handlers and the SIGUSR1 snapshot
/// handler (idempotent; unix only — a no-op elsewhere, where only
/// [`raise`]/[`raise_snapshot`] or admin frames can trigger either).
pub fn install() {
    #[cfg(unix)]
    {
        // libc's `signal` entry point, declared directly so the crate
        // stays dependency-free. Handler slot is a plain function
        // pointer (usize) per the C ABI.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // Unlike SIGINT/SIGTERM, SIGUSR1's number is not universal.
        #[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd"))]
        const SIGUSR1: i32 = 30;
        #[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "openbsd")))]
        const SIGUSR1: i32 = 10;
        let drain = on_signal as extern "C" fn(i32) as *const () as usize;
        let snap = on_snapshot_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, drain);
            signal(SIGTERM, drain);
            signal(SIGUSR1, snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_trips_the_flag_and_install_is_idempotent() {
        install();
        install();
        raise();
        assert!(requested());
    }

    #[test]
    fn snapshot_requests_are_consumed_once() {
        assert!(!snapshot_requested());
        raise_snapshot();
        assert!(snapshot_pending());
        assert!(snapshot_requested());
        assert!(!snapshot_pending());
        assert!(!snapshot_requested(), "one snapshot per delivery");
    }
}
