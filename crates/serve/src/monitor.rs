//! The server-owned monitor thread: the heartbeat of the live
//! observability plane.
//!
//! Every `monitor_interval` the monitor samples the instantaneous state
//! only it can see consistently — admission-queue depth, live
//! connections, warm-store entries/bytes — into gauges, snapshots the
//! whole registry, and feeds the snapshot to the
//! [`WindowedAggregator`], which differences it against the previous
//! tick into a bounded ring of per-window deltas. The [`SloTracker`]
//! then re-derives `slo.*` burn-rate/budget gauges from the merged
//! ring, and, when `--metrics-out` is set, the current snapshot is
//! rewritten to disk via temp-file + atomic rename (a tailing reader
//! never observes a torn document). The monitor is also the sole
//! warm-snapshot writer: periodic `--snapshot-interval-ms` snapshots,
//! on-demand ones (admin `snapshot` frame, SIGUSR1), and a final
//! at-drain snapshot, all through [`take_snapshot`].
//!
//! The thread is owned by the server: [`crate::Server::start`] spawns
//! it and [`crate::ServerHandle::wait`] joins it. It exits after the
//! batcher reports the drain complete, taking one final tick first so
//! the last window and the on-disk file reflect the drain tail.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use shahin::obs::names;
use shahin::MetricsRegistry;
use shahin_model::Classifier;
use shahin_obs::{SloConfig, SloTracker, WindowedAggregator};

use crate::protocol::{StatsSummary, TenantStat};
use crate::server::Shared;
use crate::signal;

/// Windowing and SLO state shared between the monitor thread (writer)
/// and the `stats` admin frame (reader).
pub(crate) struct MonitorState {
    pub(crate) agg: Mutex<WindowedAggregator>,
    pub(crate) slo: SloTracker,
    pub(crate) started: Instant,
    /// Aggregator reset count already published to `obs.counter_resets`
    /// — the monitor publishes only the delta each tick, keeping the
    /// registry counter monotone.
    published_resets: AtomicU64,
}

impl MonitorState {
    pub(crate) fn new(windows: usize, slo: SloConfig) -> MonitorState {
        MonitorState {
            agg: Mutex::new(WindowedAggregator::new(windows)),
            slo: SloTracker::new(vec![slo]),
            started: Instant::now(),
            published_resets: AtomicU64::new(0),
        }
    }
}

/// Writes `contents` to `path` atomically: temp file + fsync + rename in
/// the target's directory, so a concurrent reader sees either the old
/// document or the new one in full, never a torn prefix. Thin string
/// adapter over [`shahin_obs::write_atomic`], the one atomic-persistence
/// idiom every writer in the workspace shares.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    shahin_obs::write_atomic(path, contents.as_bytes())
}

/// One monitor tick: sample instantaneous gauges, difference the
/// registry into the window ring, refresh SLO gauges, rewrite the
/// metrics file.
fn tick<C: Classifier>(shared: &Shared<C>, obs: &MetricsRegistry) {
    obs.gauge(names::SERVE_QUEUE_DEPTH)
        .set(shared.queue.len() as u64);
    obs.gauge(names::SERVE_LIVE_CONNECTIONS)
        .set(shared.live_connections.load(Ordering::Relaxed));
    let (warm_entries, warm_bytes) = shared.cluster.warm_totals();
    obs.gauge(names::SERVE_WARM_ENTRIES).set(warm_entries);
    obs.gauge(names::SERVE_WARM_BYTES).set(warm_bytes);
    obs.counter(names::SERVE_MONITOR_TICKS).inc();
    // The FaaS lifecycle runs on the monitor's clock: evict idle-past-
    // policy and over-budget tenants (LRU first, at-evict snapshot so
    // re-admission is classifier-free), then refresh tenancy gauges.
    shared.cluster.enforce();

    if let Some(traces) = &shared.traces {
        obs.gauge(names::TRACE_RETAINED).set(traces.store.len() as u64);
        obs.gauge(names::TRACE_DROPPED).set(traces.store.dropped());
        obs.gauge(names::TRACE_EVICTED).set(traces.store.evicted());
        // The monitor tick is the tail-sampler's "window": each tick the
        // slow-K reservoir restarts, so "slowest K per window" means per
        // monitor interval.
        traces.store.roll_window();
    }

    {
        let mut agg = shared.monitor.agg.lock().unwrap();
        agg.tick(obs.snapshot());
        shared.monitor.slo.update(&agg, obs);
        // Surface aggregator re-baselines (counter regressions, e.g. a
        // registry swap) as a first-class counter.
        let resets = agg.counter_resets();
        let published = shared.monitor.published_resets.swap(resets, Ordering::Relaxed);
        if resets > published {
            obs.counter(names::OBS_COUNTER_RESETS).add(resets - published);
        }
    }

    if let Some(path) = &shared.config.metrics_out {
        // Best-effort: a transient disk error must not kill the monitor;
        // the CLI's final write surfaces persistent ones.
        let _ = write_atomic(path, &obs.snapshot().to_json());
    }
}

/// Takes one warm-state snapshot per persisting tenant (the single
/// `--snapshot-out` file when single-tenant, `<snapshot-dir>/<name>.shws`
/// per tenant under a manifest), counting outcomes under `persist.*`.
/// Each dump holds its store's read lock only long enough to serialize —
/// the batcher keeps serving — and every write is temp-file + fsync +
/// rename, so a crash mid-snapshot leaves the previous file intact. A
/// failure (full disk, revoked directory) must not kill the monitor; the
/// failure counter is the operator's signal. A no-op when no tenant has
/// a snapshot path.
pub(crate) fn take_snapshot<C: Classifier>(shared: &Shared<C>) {
    shared.cluster.write_snapshots();
}

/// Runs until the batcher reports the drain complete, ticking every
/// `monitor_interval` (checking for the drain every `poll_interval` so
/// shutdown is never blocked on a long monitor sleep). The monitor is
/// the single snapshot writer: periodic `--snapshot-interval-ms`
/// snapshots, on-demand ones (admin `snapshot` frame, SIGUSR1), and the
/// final at-drain snapshot all funnel through it, so two writers can
/// never race on the snapshot file.
pub(crate) fn monitor_loop<C: Classifier>(shared: Arc<Shared<C>>) {
    let obs = shared.obs().clone();
    let mut last_snapshot = Instant::now();
    loop {
        let drained = shared.drained();
        tick(&shared, &obs);
        if signal::snapshot_requested() {
            // SIGUSR1 and the admin frame share one on-demand path (and
            // one counter; the frame handler counts at admission).
            obs.counter(names::PERSIST_SNAPSHOTS_REQUESTED).inc();
            shared.snapshot_requested.store(true, Ordering::Relaxed);
        }
        let on_demand = shared.snapshot_requested.swap(false, Ordering::Relaxed);
        let due = shared
            .config
            .snapshot_interval
            .is_some_and(|interval| last_snapshot.elapsed() >= interval);
        // `drained`: one final snapshot so a restart warms from the full
        // serving history, not the last periodic tick.
        if shared.cluster.persists() && (on_demand || due || drained) {
            take_snapshot(&shared);
            last_snapshot = Instant::now();
        }
        if drained {
            break;
        }
        let deadline = Instant::now() + shared.config.monitor_interval;
        loop {
            let now = Instant::now();
            if now >= deadline
                || shared.drained()
                || shared.snapshot_requested.load(Ordering::Relaxed)
                || signal::snapshot_pending()
            {
                break;
            }
            std::thread::sleep(shared.config.poll_interval.min(deadline - now));
        }
    }
}

/// Computes the `stats` admin frame's windowed summary.
pub(crate) fn stats_summary<C: Classifier>(shared: &Shared<C>) -> StatsSummary {
    let agg = shared.monitor.agg.lock().unwrap();
    let merged = agg.merged();
    let windows = agg.len();
    drop(agg);

    let hits = merged.counter(names::STORE_HITS);
    let misses = merged.counter(names::STORE_MISSES);
    let lookups = hits + misses;
    let slo = shared
        .monitor
        .slo
        .configs()
        .first()
        .map(|config| SloTracker::evaluate(config, &merged))
        .unwrap_or_default();

    StatsSummary {
        window_secs: merged.duration.as_secs_f64(),
        windows,
        req_per_s: merged.rate_per_sec(names::SERVE_REQUESTS),
        p50_ns: merged.quantile_ns(names::SERVE_REQUEST_LATENCY, 0.5),
        p99_ns: merged.quantile_ns(names::SERVE_REQUEST_LATENCY, 0.99),
        hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        queue_depth: shared.queue.len() as u64,
        live_connections: shared.live_connections.load(Ordering::Relaxed),
        slo_burn_rate: slo.burn_rate,
        slo_budget_remaining: slo.budget_remaining,
        tenants: tenant_stats(shared),
    }
}

/// Per-tenant rows for the `ping` and `stats` admin frames — lifecycle
/// state, warm-store footprint, and in-flight count per tenant. Empty
/// for single-tenant serving, so those frames keep their pre-tenancy
/// schema.
pub(crate) fn tenant_stats<C: Classifier>(shared: &Shared<C>) -> Vec<TenantStat> {
    if !shared.cluster.multi() {
        return Vec::new();
    }
    shared
        .cluster
        .stats()
        .into_iter()
        .map(|t| TenantStat {
            name: t.name.to_string(),
            state: t.state,
            entries: t.entries,
            bytes: t.bytes,
            inflight: t.inflight,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_whole_documents() {
        let dir = std::env::temp_dir().join(format!("shahin_atomic_{}", std::process::id()));
        let path = dir.join("metrics.json");
        write_atomic(&path, "{\"a\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 1}\n");
        write_atomic(&path, "{\"b\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"b\": 2}\n");
        // No temp debris left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not persist");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_rejects_directoryless_targets() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }
}
