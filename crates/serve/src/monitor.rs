//! The server-owned monitor thread: the heartbeat of the live
//! observability plane.
//!
//! Every `monitor_interval` the monitor samples the instantaneous state
//! only it can see consistently — admission-queue depth, live
//! connections, warm-store entries/bytes — into gauges, snapshots the
//! whole registry, and feeds the snapshot to the
//! [`WindowedAggregator`], which differences it against the previous
//! tick into a bounded ring of per-window deltas. The [`SloTracker`]
//! then re-derives `slo.*` burn-rate/budget gauges from the merged
//! ring, and, when `--metrics-out` is set, the current snapshot is
//! rewritten to disk via temp-file + atomic rename (a tailing reader
//! never observes a torn document).
//!
//! The thread is owned by the server: [`crate::Server::start`] spawns
//! it and [`crate::ServerHandle::wait`] joins it. It exits after the
//! batcher reports the drain complete, taking one final tick first so
//! the last window and the on-disk file reflect the drain tail.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use shahin::obs::names;
use shahin::MetricsRegistry;
use shahin_model::Classifier;
use shahin_obs::{SloConfig, SloTracker, WindowedAggregator};

use crate::protocol::StatsSummary;
use crate::server::Shared;

/// Windowing and SLO state shared between the monitor thread (writer)
/// and the `stats` admin frame (reader).
pub(crate) struct MonitorState {
    pub(crate) agg: Mutex<WindowedAggregator>,
    pub(crate) slo: SloTracker,
    pub(crate) started: Instant,
    /// Aggregator reset count already published to `obs.counter_resets`
    /// — the monitor publishes only the delta each tick, keeping the
    /// registry counter monotone.
    published_resets: AtomicU64,
}

impl MonitorState {
    pub(crate) fn new(windows: usize, slo: SloConfig) -> MonitorState {
        MonitorState {
            agg: Mutex::new(WindowedAggregator::new(windows)),
            slo: SloTracker::new(vec![slo]),
            started: Instant::now(),
            published_resets: AtomicU64::new(0),
        }
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// same-directory temp file first and are renamed over the target, so a
/// concurrent reader sees either the old document or the new one in
/// full, never a torn prefix. Parent directories are created as needed.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    // Rename is only atomic within a filesystem, so the temp file must
    // live in the target's directory; the pid suffix keeps concurrent
    // processes (e.g. two servers pointed at one file) from colliding.
    let tmp = path.with_file_name(format!(".{file_name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// One monitor tick: sample instantaneous gauges, difference the
/// registry into the window ring, refresh SLO gauges, rewrite the
/// metrics file.
fn tick<C: Classifier>(shared: &Shared<C>, obs: &MetricsRegistry) {
    obs.gauge(names::SERVE_QUEUE_DEPTH)
        .set(shared.queue.len() as u64);
    obs.gauge(names::SERVE_LIVE_CONNECTIONS)
        .set(shared.live_connections.load(Ordering::Relaxed));
    obs.gauge(names::SERVE_WARM_ENTRIES)
        .set(shared.engine.store_entries() as u64);
    obs.gauge(names::SERVE_WARM_BYTES)
        .set(shared.engine.store_bytes() as u64);
    obs.counter(names::SERVE_MONITOR_TICKS).inc();

    if let Some(traces) = &shared.traces {
        obs.gauge(names::TRACE_RETAINED).set(traces.store.len() as u64);
        obs.gauge(names::TRACE_DROPPED).set(traces.store.dropped());
        obs.gauge(names::TRACE_EVICTED).set(traces.store.evicted());
        // The monitor tick is the tail-sampler's "window": each tick the
        // slow-K reservoir restarts, so "slowest K per window" means per
        // monitor interval.
        traces.store.roll_window();
    }

    {
        let mut agg = shared.monitor.agg.lock().unwrap();
        agg.tick(obs.snapshot());
        shared.monitor.slo.update(&agg, obs);
        // Surface aggregator re-baselines (counter regressions, e.g. a
        // registry swap) as a first-class counter.
        let resets = agg.counter_resets();
        let published = shared.monitor.published_resets.swap(resets, Ordering::Relaxed);
        if resets > published {
            obs.counter(names::OBS_COUNTER_RESETS).add(resets - published);
        }
    }

    if let Some(path) = &shared.config.metrics_out {
        // Best-effort: a transient disk error must not kill the monitor;
        // the CLI's final write surfaces persistent ones.
        let _ = write_atomic(path, &obs.snapshot().to_json());
    }
}

/// Runs until the batcher reports the drain complete, ticking every
/// `monitor_interval` (checking for the drain every `poll_interval` so
/// shutdown is never blocked on a long monitor sleep).
pub(crate) fn monitor_loop<C: Classifier>(shared: Arc<Shared<C>>) {
    let obs = shared.obs().clone();
    loop {
        let drained = shared.drained();
        tick(&shared, &obs);
        if drained {
            break;
        }
        let deadline = Instant::now() + shared.config.monitor_interval;
        loop {
            let now = Instant::now();
            if now >= deadline || shared.drained() {
                break;
            }
            std::thread::sleep(shared.config.poll_interval.min(deadline - now));
        }
    }
}

/// Computes the `stats` admin frame's windowed summary.
pub(crate) fn stats_summary<C: Classifier>(shared: &Shared<C>) -> StatsSummary {
    let agg = shared.monitor.agg.lock().unwrap();
    let merged = agg.merged();
    let windows = agg.len();
    drop(agg);

    let hits = merged.counter(names::STORE_HITS);
    let misses = merged.counter(names::STORE_MISSES);
    let lookups = hits + misses;
    let slo = shared
        .monitor
        .slo
        .configs()
        .first()
        .map(|config| SloTracker::evaluate(config, &merged))
        .unwrap_or_default();

    StatsSummary {
        window_secs: merged.duration.as_secs_f64(),
        windows,
        req_per_s: merged.rate_per_sec(names::SERVE_REQUESTS),
        p50_ns: merged.quantile_ns(names::SERVE_REQUEST_LATENCY, 0.5),
        p99_ns: merged.quantile_ns(names::SERVE_REQUEST_LATENCY, 0.99),
        hit_rate: if lookups > 0 {
            hits as f64 / lookups as f64
        } else {
            0.0
        },
        queue_depth: shared.queue.len() as u64,
        live_connections: shared.live_connections.load(Ordering::Relaxed),
        slo_burn_rate: slo.burn_rate,
        slo_budget_remaining: slo.budget_remaining,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_whole_documents() {
        let dir = std::env::temp_dir().join(format!("shahin_atomic_{}", std::process::id()));
        let path = dir.join("metrics.json");
        write_atomic(&path, "{\"a\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\": 1}\n");
        write_atomic(&path, "{\"b\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"b\": 2}\n");
        // No temp debris left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not persist");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_rejects_directoryless_targets() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }
}
