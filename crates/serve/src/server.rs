//! The TCP front end: acceptor, per-connection readers, and the batcher.
//!
//! Threading model (see DESIGN.md §5f):
//!
//! ```text
//! acceptor ──spawns──▶ reader (one per connection)
//!                        │ parse + resolve tenant + admit (quota)
//!                        ▼
//!                 Admission queue (bounded)
//!                        │ pop_batch(max_batch, max_delay)
//!                        ▼
//!                     batcher ── group by tenant
//!                        │ ensure_warm (lazy cold start)
//!                        ▼
//!        WarmEngine::explain_assigned (shard-routed) ──▶ response frames
//! ```
//!
//! The server fronts a [`TenantRegistry`] — one tenant wrapped from a
//! prebuilt engine on the classic [`Server::start`] path, N manifest
//! tenants via [`Server::start_cluster`]. Readers resolve each explain's
//! `tenant` field (absent → default tenant, unknown → typed 404) and
//! admit against the tenant's quota (over → typed 429) before the
//! request crosses into the queue; the batcher groups each popped batch
//! by tenant, materializes cold tenants on first use (counted and
//! traced as a `coldstart` span), and routes every group through the
//! tenant's consistent-hash shard map.
//!
//! Readers never touch the engine; the batcher never touches sockets
//! except through each request's [`Conn`] handle (a mutex-wrapped writer
//! shared with the reader, so pong/error frames and served explanations
//! interleave without tearing). Shutdown — admin frame, watched signal,
//! or [`ServerHandle::shutdown`] — closes the queue; the batcher drains
//! the backlog (every admitted request is still answered), the acceptor
//! stops accepting, and readers notice within one read-timeout tick.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use shahin::obs::names;
use shahin::{
    MetricsRegistry, RequestTrace, StageSpan, TraceContext, TraceCounters, TraceSink, TraceSpan,
    TraceStore, TraceStoreConfig, WarmEngine, WarmOutcome, WarmRequest,
};
use shahin_model::Classifier;
use shahin_tenancy::TenantRegistry;

use crate::monitor::{self, MonitorState};
use crate::protocol::{
    error_frame, error_frame_traced, explanation_frame, metrics_frame, parse_frame_id,
    parse_request, pong_frame, shutdown_frame, snapshot_frame, stats_frame, trace_frame,
    traces_frame, MetricsFormat, Request, TraceQuery, TraceStoreStats, WireError,
};
use crate::queue::{Admission, PushError};
use crate::signal;

/// Upper bound on one request line, newline included. Well-formed
/// request frames are tens of bytes; a longer line is hostile or broken
/// and must not grow the reader's buffer without limit. Overlong lines
/// are answered with a 400 frame and discarded up to the next newline —
/// the connection survives.
pub const MAX_FRAME_LEN: usize = 8 * 1024;

/// Tuning knobs for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Admission queue bound; pushes beyond it get 429 frames.
    pub queue_capacity: usize,
    /// Micro-batch flush threshold.
    pub max_batch: usize,
    /// Micro-batch flush delay: how long the batcher holds an open batch
    /// waiting for co-batchable requests.
    pub max_delay: Duration,
    /// Refresh the warm store every this many micro-batches (0 = never).
    pub refresh_every: u64,
    /// How often idle readers and the acceptor poll the shutdown flag.
    pub poll_interval: Duration,
    /// Per-frame write timeout. A client that stops reading (full TCP
    /// window) past this is treated as hung up: its connection is marked
    /// dead and further responses for it are dropped, so a stalled
    /// socket never blocks the batcher for other requests.
    pub write_timeout: Duration,
    /// Accept admin frames (`shutdown`, `metrics`, `stats`) from
    /// non-loopback peers. Off by default: when `addr` binds a
    /// non-loopback interface, remote clients get 403 frames instead of
    /// draining or scraping the server.
    pub allow_remote_shutdown: bool,
    /// Watch SIGINT/SIGTERM and drain when one arrives.
    pub watch_signals: bool,
    /// How often the monitor thread samples gauges and rolls a new
    /// metrics window.
    pub monitor_interval: Duration,
    /// How many monitor windows the aggregator retains; `stats` and SLO
    /// gauges look back over `windows × monitor_interval` of wall time.
    pub windows: usize,
    /// SLO latency objective: windowed request-latency p99 should stay
    /// at or below this.
    pub slo_p99: Duration,
    /// SLO error-rate objective: allowed fraction of failed traffic
    /// (rejections, expired deadlines, quarantines).
    pub slo_error_rate: f64,
    /// When set, the monitor atomically rewrites this file with the
    /// current metrics JSON every tick, so an operator can tail it.
    pub metrics_out: Option<std::path::PathBuf>,
    /// Probability of retaining a bulk-success request trace
    /// (`--trace-sample`); errors, quarantined requests, and slow ones
    /// are retained regardless (tail-based sampling).
    pub trace_sample: f64,
    /// Wall time at or above which a request's trace is always retained
    /// (`--trace-slow-ms`).
    pub trace_slow: Duration,
    /// Retained-trace ring bound (`--trace-store`); 0 disables request
    /// tracing entirely — no ids minted, no stage spans recorded.
    pub trace_store: usize,
    /// When set, the monitor thread writes checksummed warm-state
    /// snapshots here (`--snapshot-out`): periodically per
    /// `snapshot_interval`, on demand (admin `snapshot` frame, SIGUSR1),
    /// and once at drain. Writes are temp-file + fsync + rename, so the
    /// file is always a complete snapshot. Parent directories are
    /// created as needed.
    pub snapshot_out: Option<std::path::PathBuf>,
    /// Periodic snapshot cadence (`--snapshot-interval-ms`); `None`
    /// means on-demand and at-drain snapshots only.
    pub snapshot_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 1024,
            max_batch: 32,
            max_delay: Duration::from_millis(5),
            refresh_every: 0,
            poll_interval: Duration::from_millis(50),
            write_timeout: Duration::from_secs(1),
            allow_remote_shutdown: false,
            watch_signals: false,
            monitor_interval: Duration::from_secs(1),
            windows: 12,
            slo_p99: Duration::from_millis(500),
            slo_error_rate: 0.001,
            metrics_out: None,
            trace_sample: TraceStoreConfig::default().sample,
            trace_slow: TraceStoreConfig::default().slow,
            trace_store: TraceStoreConfig::default().capacity,
            snapshot_out: None,
            snapshot_interval: None,
        }
    }
}

/// One client connection's write half, shared by its reader thread (pong
/// and error frames) and the batcher (served explanations).
struct Conn {
    stream: Mutex<TcpStream>,
    /// Whether the peer is a loopback address (gates admin frames).
    peer_loopback: bool,
    /// Flipped on the first failed or timed-out write. A timed-out
    /// `write_all` may have written a partial frame, so the byte stream
    /// is torn: nothing further may be sent on this connection.
    dead: AtomicBool,
}

impl Conn {
    /// Writes one frame plus the line terminator, bounded by the
    /// stream's write timeout. Errors (including the timeout a stalled
    /// client causes) mean the client is gone or not reading: the
    /// connection is marked dead, the socket shut down so its reader
    /// unblocks and cleans up, and this and all further responses for
    /// it are dropped on the floor.
    fn send(&self, frame: &str) {
        if self.dead.load(Ordering::Relaxed) {
            return;
        }
        let mut stream = self.stream.lock().unwrap();
        let wrote = stream
            .write_all(frame.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush());
        if wrote.is_err() {
            self.dead.store(true, Ordering::Relaxed);
            let _ = stream.shutdown(Shutdown::Both);
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }
}

/// An admitted explain request waiting for the batcher.
pub(crate) struct Pending {
    conn: Arc<Conn>,
    /// Client frame id, echoed on the response.
    frame_id: u64,
    /// Registry index of the tenant the request routed to; the batcher
    /// groups by it and releases the tenant's quota after answering.
    tenant: usize,
    /// Warm-set row to explain.
    row: usize,
    /// Server-assigned id stamped on provenance records.
    request_id: u64,
    /// Admission time (queue-wait + end-to-end latency histograms; the
    /// zero point of the request's span tree).
    enqueued: Instant,
    /// Absolute queue deadline, from the request's `deadline_ms`.
    deadline: Option<Instant>,
    /// Trace context minted at admission (`None` with tracing off).
    trace: Option<TraceContext>,
}

/// The server's request-tracing state: the sink engine workers deposit
/// stage spans into, the tail-sampled store of retained traces, and the
/// trace-id mint. `None` on [`Shared::traces`] when `trace_store` is 0.
pub(crate) struct TracePlane {
    pub(crate) store: TraceStore,
    pub(crate) sink: Arc<TraceSink>,
    /// Ids start at 1: 0 means "no exemplar" in histogram bucket slots.
    next_trace_id: AtomicU64,
}

impl TracePlane {
    fn mint(&self) -> TraceContext {
        TraceContext::root(self.next_trace_id.fetch_add(1, Ordering::Relaxed))
    }
}

pub(crate) struct Shared<C: Classifier> {
    pub(crate) cluster: Arc<TenantRegistry<C>>,
    pub(crate) queue: Admission<Pending>,
    shutdown: AtomicBool,
    /// Set by the batcher once the backlog is fully answered; readers
    /// hold connections open (answering 503s) until then.
    drained: AtomicBool,
    next_request_id: AtomicU64,
    /// Requests answered by the batcher (the drain report).
    served: AtomicU64,
    /// Reader threads currently attached to a client connection; the
    /// monitor samples this into the `serve.live_connections` gauge.
    pub(crate) live_connections: AtomicU64,
    /// Windowed-aggregator + SLO state owned by the monitor thread.
    pub(crate) monitor: MonitorState,
    /// On-demand snapshot flag: set by the admin `snapshot` frame (and
    /// by the monitor itself for SIGUSR1), consumed by the monitor
    /// thread — the single snapshot writer.
    pub(crate) snapshot_requested: AtomicBool,
    /// Request-tracing plane (`None` when `trace_store` is 0).
    pub(crate) traces: Option<TracePlane>,
    pub(crate) config: ServeConfig,
}

impl<C: Classifier> Shared<C> {
    pub(crate) fn obs(&self) -> &MetricsRegistry {
        self.cluster.obs()
    }

    /// The tenant label stamped on a request's trace — only when the
    /// cluster actually is multi-tenant, so single-tenant traces keep
    /// the pre-tenancy schema.
    fn trace_tenant(&self, tenant: usize) -> Option<Arc<str>> {
        self.cluster
            .multi()
            .then(|| Arc::clone(self.cluster.name(tenant)))
    }

    /// Begins the graceful drain: stop admitting, let the batcher finish
    /// the backlog, wake everything that polls.
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn drained(&self) -> bool {
        self.drained.load(Ordering::SeqCst)
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`shutdown`](ServerHandle::shutdown) (or send an admin `shutdown`
/// frame) and then [`wait`](ServerHandle::wait).
pub struct Server;

/// Handle to a started server.
pub struct ServerHandle<C: Classifier + 'static> {
    addr: SocketAddr,
    shared: Arc<Shared<C>>,
    acceptor: JoinHandle<()>,
    batcher: JoinHandle<()>,
    monitor: JoinHandle<()>,
}

impl<C: Classifier + 'static> ServerHandle<C> {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts the graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Blocks until the drain completes and all server threads exit;
    /// returns the number of requests the batcher answered. The monitor
    /// exits after its final post-drain tick, so the last metrics-out
    /// rewrite reflects the drained state.
    pub fn wait(self) -> u64 {
        self.acceptor.join().expect("acceptor thread panicked");
        self.batcher.join().expect("batcher thread panicked");
        self.monitor.join().expect("monitor thread panicked");
        self.shared.served.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Binds `config.addr` and spawns the acceptor and batcher threads
    /// over a primed engine — the single-tenant path, wrapping the
    /// engine as a one-tenant cluster (no tenant labels, no lifecycle
    /// management; `--snapshot-out` becomes the tenant's snapshot path).
    pub fn start<C: Classifier + 'static>(
        engine: Arc<WarmEngine<C>>,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle<C>> {
        let cluster = Arc::new(TenantRegistry::single(engine, config.snapshot_out.clone()));
        Server::start_cluster(cluster, config)
    }

    /// Binds `config.addr` over a tenant cluster: requests route by
    /// their `tenant` field, tenants materialize lazily, and the monitor
    /// runs the FaaS lifecycle (idle/budget eviction, per-tenant
    /// snapshots) every tick.
    pub fn start_cluster<C: Classifier + 'static>(
        cluster: Arc<TenantRegistry<C>>,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle<C>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        if config.watch_signals {
            signal::install();
        }
        let slo = shahin_obs::SloConfig {
            target: "serve.request".into(),
            latency_histogram: names::SERVE_REQUEST_LATENCY.into(),
            latency_objective: config.slo_p99,
            latency_quantile: 0.99,
            requests_counter: names::SERVE_REQUESTS.into(),
            error_counters: vec![
                names::SERVE_REJECTED_OVERLOAD.into(),
                names::SERVE_REJECTED_SHUTDOWN.into(),
                names::SERVE_DEADLINE_EXPIRED.into(),
                names::SERVE_QUARANTINED.into(),
            ],
            error_rate_objective: config.slo_error_rate,
        };
        // Tracing on: attach the stage sink so engine workers can see it,
        // and bound the retained-trace ring per the config knobs.
        let traces = (config.trace_store > 0).then(|| {
            let sink = Arc::new(TraceSink::new());
            cluster.obs().attach_trace_sink(Arc::clone(&sink));
            TracePlane {
                store: TraceStore::new(TraceStoreConfig {
                    capacity: config.trace_store,
                    sample: config.trace_sample,
                    slow: config.trace_slow,
                    ..TraceStoreConfig::default()
                }),
                sink,
                next_trace_id: AtomicU64::new(1),
            }
        });
        let shared = Arc::new(Shared {
            cluster,
            queue: Admission::new(config.queue_capacity),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            next_request_id: AtomicU64::new(0),
            served: AtomicU64::new(0),
            live_connections: AtomicU64::new(0),
            monitor: MonitorState::new(config.windows, slo),
            snapshot_requested: AtomicBool::new(false),
            traces,
            config,
        });
        // Server threads carry names so EventSink timeline lanes and
        // panic messages identify their role.
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("acceptor".into())
                .spawn(move || accept_loop(listener, shared))
                .expect("spawn acceptor")
        };
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("batcher".into())
                .spawn(move || batch_loop(shared))
                .expect("spawn batcher")
        };
        let monitor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("monitor".into())
                .spawn(move || monitor::monitor_loop(shared))
                .expect("spawn monitor")
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor,
            batcher,
            monitor,
        })
    }
}

/// Accepts connections until shutdown, spawning one reader thread each,
/// then joins the readers (they exit within one poll tick of the flag).
fn accept_loop<C: Classifier + 'static>(listener: TcpListener, shared: Arc<Shared<C>>) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shared.config.watch_signals && signal::requested() {
            shared.trigger_shutdown();
        }
        if shared.shutting_down() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Response frames are small; Nagle + delayed ACK would
                // add ~40ms per round trip.
                let _ = stream.set_nodelay(true);
                shared.obs().counter(names::SERVE_CONNECTIONS).inc();
                let shared = Arc::clone(&shared);
                readers.push(
                    std::thread::Builder::new()
                        .name("reader".into())
                        .spawn(move || read_loop(stream, shared))
                        .expect("spawn reader"),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
    for reader in readers {
        let _ = reader.join();
    }
}

/// Reads newline-delimited frames off one connection until EOF or
/// shutdown. Every malformed frame is answered in place and the
/// connection kept open; only explain frames cross into the queue. The
/// partial-line buffer is bounded by [`MAX_FRAME_LEN`]: an overlong
/// line gets one 400 frame and its remaining bytes are discarded up to
/// the next newline, so a client streaming without newlines can never
/// grow server memory.
fn read_loop<C: Classifier + 'static>(stream: TcpStream, shared: Arc<Shared<C>>) {
    // Blocking socket with a read timeout: the reader wakes every tick
    // to notice a drain even when the client sends nothing. The write
    // timeout bounds how long a response frame can stall the batcher on
    // a client that stopped reading.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let peer_loopback = stream
        .peer_addr()
        .map(|peer| peer.ip().is_loopback())
        .unwrap_or(false);
    let conn = Arc::new(Conn {
        stream: Mutex::new(stream.try_clone().expect("tcp stream clones")),
        peer_loopback,
        dead: AtomicBool::new(false),
    });
    shared.live_connections.fetch_add(1, Ordering::Relaxed);
    // Decrements on every exit path out of the read loop below (the
    // loop only breaks, never returns).
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    // True while discarding the tail of an overlong line; the 400 frame
    // was already sent when the overflow was detected.
    let mut discarding = false;
    loop {
        let buf = match reader.fill_buf() {
            Ok([]) => {
                // EOF with an unterminated final frame: flush it.
                if !discarding && !line.is_empty() {
                    handle_frame(&String::from_utf8_lossy(&line), &conn, &shared);
                }
                break;
            }
            Ok(buf) => buf,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted =>
            {
                // Read timeout tick. Connections stay open through the
                // drain (in-flight frames still get typed 503s) and close
                // once the batcher has answered the whole backlog.
                if shared.drained() || conn.is_dead() {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let (chunk_len, terminated) = match buf.iter().position(|&b| b == b'\n') {
            Some(i) => (i, true),
            None => (buf.len(), false),
        };
        if !discarding {
            if line.len() + chunk_len > MAX_FRAME_LEN {
                shared.obs().counter(names::SERVE_REJECTED_MALFORMED).inc();
                conn.send(&error_frame(
                    0,
                    &WireError::bad_request(format!("frame exceeds {MAX_FRAME_LEN} bytes")),
                ));
                line.clear();
                discarding = true;
            } else {
                line.extend_from_slice(&buf[..chunk_len]);
            }
        }
        reader.consume(chunk_len + usize::from(terminated));
        if terminated {
            if discarding {
                discarding = false;
            } else {
                let text = String::from_utf8_lossy(&line).into_owned();
                if !text.trim().is_empty() {
                    handle_frame(&text, &conn, &shared);
                }
            }
            line.clear();
        }
    }
    shared.live_connections.fetch_sub(1, Ordering::Relaxed);
}

/// Parses and dispatches one frame.
fn handle_frame<C: Classifier>(line: &str, conn: &Arc<Conn>, shared: &Shared<C>) {
    let obs = shared.obs();
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(err) => {
            obs.counter(names::SERVE_REJECTED_MALFORMED).inc();
            conn.send(&error_frame(parse_frame_id(line), &err));
            return;
        }
    };
    match request {
        Request::Ping { id } => {
            let uptime_secs = shared.monitor.started.elapsed().as_secs();
            let (entries, _) = shared.cluster.warm_totals();
            let tenants = monitor::tenant_stats(shared);
            conn.send(&pong_frame(
                id,
                uptime_secs,
                env!("CARGO_PKG_VERSION"),
                entries as usize,
                &tenants,
            ));
        }
        Request::Shutdown { id } => {
            if !admin_permitted(conn.peer_loopback, shared.config.allow_remote_shutdown) {
                obs.counter(names::SERVE_REJECTED_FORBIDDEN).inc();
                conn.send(&error_frame(id, &WireError::forbidden()));
                return;
            }
            conn.send(&shutdown_frame(id));
            shared.trigger_shutdown();
        }
        Request::Metrics { id, format } => {
            if !admin_permitted(conn.peer_loopback, shared.config.allow_remote_shutdown) {
                obs.counter(names::SERVE_REJECTED_FORBIDDEN).inc();
                conn.send(&error_frame(id, &WireError::forbidden()));
                return;
            }
            obs.counter(names::SERVE_SCRAPES).inc();
            let snapshot = obs.snapshot();
            let body = match format {
                MetricsFormat::Prometheus => snapshot.to_prometheus(),
                MetricsFormat::Json => snapshot.to_json(),
            };
            conn.send(&metrics_frame(id, format, &body));
        }
        Request::Stats { id } => {
            if !admin_permitted(conn.peer_loopback, shared.config.allow_remote_shutdown) {
                obs.counter(names::SERVE_REJECTED_FORBIDDEN).inc();
                conn.send(&error_frame(id, &WireError::forbidden()));
                return;
            }
            obs.counter(names::SERVE_SCRAPES).inc();
            conn.send(&stats_frame(id, &monitor::stats_summary(shared)));
        }
        Request::Snapshot { id } => {
            if !admin_permitted(conn.peer_loopback, shared.config.allow_remote_shutdown) {
                obs.counter(names::SERVE_REJECTED_FORBIDDEN).inc();
                conn.send(&error_frame(id, &WireError::forbidden()));
                return;
            }
            if !shared.cluster.persists() {
                conn.send(&error_frame(id, &WireError::snapshots_disabled()));
                return;
            }
            obs.counter(names::PERSIST_SNAPSHOTS_REQUESTED).inc();
            // The monitor thread does the write (single snapshot writer);
            // it wakes within one poll tick of this flag.
            shared.snapshot_requested.store(true, Ordering::Relaxed);
            let path = match &shared.config.snapshot_out {
                Some(path) => path.to_string_lossy().into_owned(),
                // Multi-tenant: one file per tenant under the manifest's
                // snapshot_dir.
                None => "<per-tenant>".to_string(),
            };
            conn.send(&snapshot_frame(id, &path));
        }
        Request::Trace { id, query, format } => {
            if !admin_permitted(conn.peer_loopback, shared.config.allow_remote_shutdown) {
                obs.counter(names::SERVE_REJECTED_FORBIDDEN).inc();
                conn.send(&error_frame(id, &WireError::forbidden()));
                return;
            }
            // Counted apart from serve.scrapes: trace fetches are debug
            // traffic, not metrics-plane load.
            obs.counter(names::SERVE_TRACE_FETCHES).inc();
            let Some(traces) = &shared.traces else {
                conn.send(&error_frame(id, &WireError::tracing_disabled()));
                return;
            };
            let stats = TraceStoreStats {
                len: traces.store.len() as u64,
                retained: traces.store.retained(),
                dropped: traces.store.dropped(),
                evicted: traces.store.evicted(),
            };
            match query {
                TraceQuery::ById(trace_id) => match traces.store.get(trace_id) {
                    Some(trace) => conn.send(&trace_frame(id, &trace, format)),
                    None => {
                        conn.send(&error_frame(id, &WireError::trace_not_found(trace_id)));
                    }
                },
                TraceQuery::Slowest(n) => {
                    conn.send(&traces_frame(id, &traces.store.slowest(n), stats));
                }
                TraceQuery::Errors => {
                    conn.send(&traces_frame(id, &traces.store.errors(), stats));
                }
            }
        }
        Request::Explain {
            id,
            row,
            deadline_ms,
            tenant,
        } => {
            if shared.shutting_down() {
                obs.counter(names::SERVE_REJECTED_SHUTDOWN).inc();
                conn.send(&error_frame(id, &WireError::shutting_down()));
                return;
            }
            // Route first: the row bound and quota are per-tenant.
            // `resolve` counts `tenancy.unknown_tenant` itself; the miss
            // is a routing 404, not malformed input.
            let Some(tidx) = shared.cluster.resolve(tenant.as_deref()) else {
                let name = tenant.as_deref().unwrap_or_default();
                conn.send(&error_frame(id, &WireError::unknown_tenant(name)));
                return;
            };
            let n_rows = shared.cluster.n_rows(tidx);
            if row >= n_rows {
                obs.counter(names::SERVE_REJECTED_MALFORMED).inc();
                conn.send(&error_frame(id, &WireError::row_out_of_range(row, n_rows)));
                return;
            }
            // Quota gate: every admitted request holds one in-flight slot
            // until the batcher answers it (release in batch_loop).
            if !shared.cluster.try_admit(tidx) {
                let quota = shared.cluster.quota(tidx).unwrap_or(0);
                conn.send(&error_frame(
                    id,
                    &WireError::tenant_over_quota(shared.cluster.name(tidx), quota),
                ));
                return;
            }
            let enqueued = Instant::now();
            let pending = Pending {
                conn: Arc::clone(conn),
                frame_id: id,
                tenant: tidx,
                row,
                request_id: shared.next_request_id.fetch_add(1, Ordering::Relaxed),
                enqueued,
                deadline: deadline_ms.map(|ms| enqueued + Duration::from_millis(ms)),
                trace: shared.traces.as_ref().map(TracePlane::mint),
            };
            match shared.queue.push(pending) {
                Ok(()) => {
                    obs.counter(names::SERVE_REQUESTS).inc();
                    obs.gauge(names::SERVE_QUEUE_DEPTH)
                        .set(shared.queue.len() as u64);
                }
                Err((rejected, PushError::Full)) => {
                    shared.cluster.release(rejected.tenant);
                    obs.counter(names::SERVE_REJECTED_OVERLOAD).inc();
                    reject_traced(
                        shared,
                        &rejected,
                        &WireError::overloaded(shared.config.queue_capacity),
                    );
                }
                Err((rejected, PushError::Closed)) => {
                    shared.cluster.release(rejected.tenant);
                    obs.counter(names::SERVE_REJECTED_SHUTDOWN).inc();
                    reject_traced(shared, &rejected, &WireError::shutting_down());
                }
            }
        }
    }
}

/// Whether an admin frame (`shutdown`, `metrics`, `stats`, `trace`) may
/// act on the server: always from loopback peers, from remote ones only
/// when the operator opted in.
fn admin_permitted(peer_loopback: bool, allow_remote_shutdown: bool) -> bool {
    peer_loopback || allow_remote_shutdown
}

/// Nanoseconds from `t0` to `t`, saturating both at zero (clock reads
/// race) and at `u64::MAX`.
fn ns_since(t0: Instant, t: Instant) -> u64 {
    u64::try_from(t.saturating_duration_since(t0).as_nanos()).unwrap_or(u64::MAX)
}

/// Answers a queue-rejected request (429/503) with an error frame and,
/// when traced, retains a minimal error trace — admission is where trace
/// ids are minted, so even never-batched requests stay debuggable.
fn reject_traced<C: Classifier>(shared: &Shared<C>, rejected: &Pending, err: &WireError) {
    let trace_id = rejected.trace.map(|ctx| ctx.trace_id);
    // Offer before sending so a fetch issued right after the error frame
    // never races the store insert.
    if let (Some(traces), Some(ctx)) = (&shared.traces, rejected.trace) {
        let total_ns = ns_since(rejected.enqueued, Instant::now());
        traces.store.offer(assemble_trace(AssembleArgs {
            ctx,
            row: rejected.row,
            request_id: rejected.request_id,
            tenant: shared.trace_tenant(rejected.tenant),
            batch_id: None,
            t0: rejected.enqueued,
            total_ns,
            queue_ns: total_ns,
            batch_window: None,
            stages: Vec::new(),
            error: true,
            quarantined: false,
            degraded: false,
        }));
    }
    rejected
        .conn
        .send(&error_frame_traced(rejected.frame_id, err, trace_id));
}

/// Everything the batcher knows about one finished request, handed to
/// [`assemble_trace`].
struct AssembleArgs {
    ctx: TraceContext,
    row: usize,
    request_id: u64,
    /// Tenant label (`None` for single-tenant serving — omitted from the
    /// trace JSON, keeping the pre-tenancy schema).
    tenant: Option<Arc<str>>,
    batch_id: Option<u64>,
    /// The trace's zero point (admission).
    t0: Instant,
    total_ns: u64,
    queue_ns: u64,
    /// When the request reached the engine: the batch flush's start and
    /// end instants.
    batch_window: Option<(Instant, Instant)>,
    stages: Vec<StageSpan>,
    error: bool,
    quarantined: bool,
    degraded: bool,
}

/// Index of the `batch` span engine stages parent under (0 is the root
/// `request` span, 1 the `queue` span).
const BATCH_SPAN: u32 = 2;

/// Builds one finished [`RequestTrace`] from the batcher's measurements
/// plus the engine's stage spans. Every offset is clamped so children
/// nest within their parents even under clock-read jitter: `queue` and
/// `batch` within `request`, engine stages within `batch`.
fn assemble_trace(args: AssembleArgs) -> RequestTrace {
    let mut counters = TraceCounters::default();
    let mut spans = Vec::with_capacity(3 + args.stages.len());
    spans.push(TraceSpan {
        name: Arc::from("request"),
        parent: None,
        start_ns: 0,
        dur_ns: args.total_ns,
    });
    spans.push(TraceSpan {
        name: Arc::from("queue"),
        parent: Some(0),
        start_ns: 0,
        dur_ns: args.queue_ns.min(args.total_ns),
    });
    if let Some((flush_start, flush_end)) = args.batch_window {
        let start = ns_since(args.t0, flush_start).min(args.total_ns);
        let end = ns_since(args.t0, flush_end).clamp(start, args.total_ns);
        debug_assert_eq!(spans.len(), BATCH_SPAN as usize);
        spans.push(TraceSpan {
            name: Arc::from("batch"),
            parent: Some(0),
            start_ns: start,
            dur_ns: end - start,
        });
        for stage in args.stages {
            counters.absorb(&stage.counters);
            let stage_start = ns_since(args.t0, stage.start).clamp(start, end);
            let stage_dur = u64::try_from(stage.dur.as_nanos())
                .unwrap_or(u64::MAX)
                .min(end - stage_start);
            spans.push(TraceSpan {
                name: Arc::from(stage.name),
                parent: Some(BATCH_SPAN),
                start_ns: stage_start,
                dur_ns: stage_dur,
            });
        }
    }
    RequestTrace {
        trace_id: args.ctx.trace_id,
        request_id: args.request_id,
        row: args.row as u64,
        batch_id: args.batch_id,
        tenant: args.tenant,
        spans,
        counters,
        error: args.error,
        quarantined: args.quarantined,
        degraded: args.degraded,
        total_ns: args.total_ns,
    }
}

/// Pops micro-batches until the queue closes and drains, explaining each
/// against the warm engine and answering every request.
fn batch_loop<C: Classifier>(shared: Arc<Shared<C>>) {
    let obs = shared.obs().clone();
    let batch_size = obs.value_histogram(names::SERVE_BATCH_SIZE);
    let queue_wait = obs.histogram(names::SERVE_QUEUE_WAIT);
    let latency = obs.histogram(names::SERVE_REQUEST_LATENCY);
    let mut batches: u64 = 0;
    while let Some(batch) = shared
        .queue
        .pop_batch(shared.config.max_batch, shared.config.max_delay)
    {
        obs.gauge(names::SERVE_QUEUE_DEPTH)
            .set(shared.queue.len() as u64);
        batch_size.record(batch.len() as u64);
        obs.counter(names::SERVE_BATCHES).inc();
        let batch_id = batches;

        // Requests whose deadline passed while queued get 408 frames and
        // never reach the engine; the rest form the micro-batch.
        let now = Instant::now();
        let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
        for pending in batch {
            queue_wait.record(now.duration_since(pending.enqueued));
            if pending.deadline.is_some_and(|d| d < now) {
                obs.counter(names::SERVE_DEADLINE_EXPIRED).inc();
                if let (Some(traces), Some(ctx)) = (&shared.traces, pending.trace) {
                    let total_ns = ns_since(pending.enqueued, now);
                    traces.store.offer(assemble_trace(AssembleArgs {
                        ctx,
                        row: pending.row,
                        request_id: pending.request_id,
                        tenant: shared.trace_tenant(pending.tenant),
                        batch_id: None,
                        t0: pending.enqueued,
                        total_ns,
                        queue_ns: total_ns,
                        batch_window: None,
                        stages: Vec::new(),
                        error: true,
                        quarantined: false,
                        degraded: false,
                    }));
                }
                pending.conn.send(&error_frame_traced(
                    pending.frame_id,
                    &WireError::deadline_expired(),
                    pending.trace.map(|ctx| ctx.trace_id),
                ));
                shared.cluster.release(pending.tenant);
                shared.served.fetch_add(1, Ordering::SeqCst);
            } else {
                live.push(pending);
            }
        }
        // One engine flush per tenant present in the batch, grouped in
        // arrival order of each tenant's first request: co-tenant
        // requests still amortize classifier calls across the batch;
        // cross-tenant ones never share an engine.
        let mut groups: Vec<(usize, Vec<Pending>)> = Vec::new();
        for pending in live {
            match groups.iter_mut().find(|(t, _)| *t == pending.tenant) {
                Some((_, group)) => group.push(pending),
                None => groups.push((pending.tenant, vec![pending])),
            }
        }
        for (tenant, group) in groups {
            let requests: Vec<WarmRequest> = group
                .iter()
                .map(|p| WarmRequest {
                    row: p.row,
                    request_id: p.request_id,
                    trace: p.trace.map(|ctx| ctx.trace_id),
                })
                .collect();
            // Batcher occupancy: how many requests the engine is
            // explaining right now (0 between flushes).
            obs.gauge(names::SERVE_BATCH_INFLIGHT)
                .set(group.len() as u64);
            let flush_start = Instant::now();
            // Lazy materialization: a cold tenant's first batch pays its
            // cold start here, inside the flush window, so the synthetic
            // `coldstart` stage below nests in the `batch` span.
            let (slot, cold) = shared.cluster.ensure_warm(tenant);
            let epoch = slot.engine.epoch();
            // Shard-route every request by its row's frozen-itemset
            // signature; bit-identical to unsharded explanation because
            // per-tuple seeding depends only on the global warm row.
            let assign = slot.assign(&requests);
            let outcomes = slot
                .engine
                .explain_assigned(&requests, &assign, slot.n_workers());
            let flush_end = Instant::now();
            obs.gauge(names::SERVE_BATCH_INFLIGHT).set(0);
            let coldstart = cold.map(|c| StageSpan {
                name: "coldstart",
                start: flush_start,
                dur: c.wall,
                counters: TraceCounters::default(),
            });
            for (pending, outcome) in group.iter().zip(outcomes) {
                let trace_id = pending.trace.map(|ctx| ctx.trace_id);
                let (frame, error, quarantined, degraded) = match outcome {
                    WarmOutcome::Ok {
                        explanation,
                        degraded,
                    } => (
                        explanation_frame(
                            pending.frame_id,
                            pending.row,
                            &explanation,
                            degraded,
                            epoch,
                            trace_id,
                        ),
                        false,
                        false,
                        degraded,
                    ),
                    WarmOutcome::Failed(failure) => {
                        obs.counter(names::SERVE_QUARANTINED).inc();
                        (
                            error_frame_traced(
                                pending.frame_id,
                                &WireError::quarantined(failure.kind, &failure.message),
                                trace_id,
                            ),
                            true,
                            true,
                            false,
                        )
                    }
                };
                let total = pending.enqueued.elapsed();
                match trace_id {
                    Some(id) => latency.record_traced(total, id),
                    None => latency.record(total),
                }
                // Offer before sending: once a client sees the trace id in
                // its response frame, a fetch on the same connection must
                // not race the store insert.
                if let (Some(traces), Some(ctx)) = (&shared.traces, pending.trace) {
                    let mut stages = traces.sink.take(ctx.trace_id);
                    if let Some(cs) = &coldstart {
                        stages.insert(0, cs.clone());
                    }
                    traces.store.offer(assemble_trace(AssembleArgs {
                        ctx,
                        row: pending.row,
                        request_id: pending.request_id,
                        tenant: shared.trace_tenant(pending.tenant),
                        batch_id: Some(batch_id),
                        t0: pending.enqueued,
                        total_ns: u64::try_from(total.as_nanos()).unwrap_or(u64::MAX),
                        queue_ns: ns_since(pending.enqueued, flush_start),
                        batch_window: Some((flush_start, flush_end)),
                        stages,
                        error,
                        quarantined,
                        degraded,
                    }));
                }
                pending.conn.send(&frame);
                shared.cluster.release(tenant);
                shared.served.fetch_add(1, Ordering::SeqCst);
            }
        }

        batches += 1;
        let every = shared.config.refresh_every;
        if every > 0 && batches.is_multiple_of(every) {
            // Refresh every materialized tenant; cold ones have nothing
            // to refresh.
            for idx in 0..shared.cluster.len() {
                if let Some(slot) = shared.cluster.slot(idx) {
                    slot.engine.refresh();
                }
            }
        }
    }
    // Queue closed and fully drained: every admitted request has been
    // answered. Flag it for the smoke test's clean-drain assertion.
    obs.gauge(names::SERVE_QUEUE_DEPTH).set(0);
    obs.gauge(names::SERVE_DRAINED).set(1);
    shared.drained.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admin_frames_are_loopback_only_unless_opted_in() {
        assert!(admin_permitted(true, false));
        assert!(admin_permitted(true, true));
        assert!(!admin_permitted(false, false));
        assert!(admin_permitted(false, true));
    }
}
