//! The bounded admission queue between reader threads and the batcher.
//!
//! Readers [`push`](Admission::push) parsed explain requests; a full
//! queue rejects at admission time (the caller answers with a 429-style
//! frame) instead of queueing unbounded work. The batcher side
//! [`pop_batch`](Admission::pop_batch)es: it blocks for the first
//! request, then coalesces follow-ups until the micro-batch is full or
//! the flush delay elapses — the dynamic micro-batching that lets
//! co-batched tuples share one pass over the warm store.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a [`Admission::push`] was refused; the rejected item rides along
/// so the caller can answer it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — answer 429 and let the client retry.
    Full,
    /// The queue is closed for shutdown — answer 503.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with batch-coalescing consumption.
pub struct Admission<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Admission<T> {
    /// An empty queue holding at most `capacity` requests.
    pub fn new(capacity: usize) -> Admission<T> {
        Admission {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits one request, or hands it back with the rejection reason.
    pub fn push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until at least one request is queued, then keeps collecting
    /// until the batch holds `max_batch` requests or `max_delay` has
    /// passed since the first one was taken. Returns `None` once the
    /// queue is closed *and* drained — the batcher's exit signal.
    pub fn pop_batch(&self, max_batch: usize, max_delay: Duration) -> Option<Vec<T>> {
        let max_batch = max_batch.max(1);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(first) = inner.items.pop_front() {
                let mut batch = Vec::with_capacity(max_batch.min(16));
                batch.push(first);
                let deadline = Instant::now() + max_delay;
                while batch.len() < max_batch {
                    if let Some(item) = inner.items.pop_front() {
                        batch.push(item);
                        continue;
                    }
                    if inner.closed {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, timeout) = self.ready.wait_timeout(inner, deadline - now).unwrap();
                    inner = guard;
                    if timeout.timed_out() && inner.items.is_empty() {
                        break;
                    }
                }
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and `pop_batch` returns `None` once the backlog drains.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_hands_the_item_back() {
        let q = Admission::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let (item, err) = q.push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn rejects_after_close_and_drains_the_backlog() {
        let q = Admission::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        let (item, err) = q.push(3).unwrap_err();
        assert_eq!((item, err), (3, PushError::Closed));
        // The backlog is still served...
        assert_eq!(q.pop_batch(10, Duration::from_millis(1)), Some(vec![1, 2]));
        // ...then the consumer learns the queue is done.
        assert_eq!(q.pop_batch(10, Duration::from_millis(1)), None);
    }

    #[test]
    fn flushes_on_max_batch_without_waiting_out_the_delay() {
        let q = Admission::new(16);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let t0 = Instant::now();
        // A long delay must not matter: the batch fills instantly.
        let batch = q.pop_batch(3, Duration::from_secs(5)).unwrap();
        assert_eq!(batch, vec![0, 1, 2]);
        assert!(t0.elapsed() < Duration::from_secs(1));
        assert_eq!(
            q.pop_batch(3, Duration::from_millis(1)).unwrap(),
            vec![3, 4]
        );
    }

    #[test]
    fn flushes_a_partial_batch_when_the_delay_elapses() {
        let q = Admission::new(16);
        q.push(42).unwrap();
        let batch = q.pop_batch(8, Duration::from_millis(5)).unwrap();
        assert_eq!(batch, vec![42]);
    }

    #[test]
    fn coalesces_requests_arriving_during_the_delay_window() {
        let q = Arc::new(Admission::new(16));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push(1).unwrap();
                std::thread::sleep(Duration::from_millis(20));
                q.push(2).unwrap();
            })
        };
        let batch = q.pop_batch(2, Duration::from_secs(2)).unwrap();
        assert_eq!(batch, vec![1, 2], "late arrival joins the open batch");
        producer.join().unwrap();
    }

    #[test]
    fn close_wakes_a_blocked_consumer() {
        let q = Arc::new(Admission::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
