//! `shahin-serve`: an online explanation service over a warm
//! perturbation repository.
//!
//! The offline drivers in `shahin` amortize explanation cost *within* a
//! batch; a service answering a stream of explain requests wants to
//! amortize it *across* requests. This crate puts a std-only TCP front
//! end — newline-delimited JSON, no external dependencies — over a
//! [`shahin::WarmEngine`]:
//!
//! - [`protocol`]: the wire format — request parsing with typed error
//!   frames (bad frames never kill the connection),
//! - [`queue`]: the bounded admission queue with 429-style backpressure,
//! - [`server`]: acceptor + per-connection readers + the batcher thread
//!   that coalesces concurrent requests into dynamic micro-batches
//!   (flush on `max_batch` or `max_delay`) so co-batched tuples share
//!   the warm [`shahin::PerturbationStore`] and Anchor caches,
//! - [`monitor`]: the server-owned monitor thread feeding the live
//!   observability plane — per-tick gauges, the windowed aggregator
//!   behind the `stats` admin frame, `slo.*` burn-rate gauges, atomic
//!   `--metrics-out` rewrites, and checksummed `--snapshot-out`
//!   warm-state snapshots (periodic, on-demand, and at drain),
//! - [`signal`]: SIGINT/SIGTERM watching for graceful drains, SIGUSR1
//!   for on-demand snapshots.
//!
//! One listener can also front a whole *tenant cluster*: build a
//! [`shahin_tenancy::TenantRegistry`] from a manifest and pass it to
//! [`Server::start_cluster`]. Requests then route by their `tenant`
//! field (absent → the default tenant, unknown → typed 404), each
//! tenant's requests admit against its own in-flight quota (over →
//! typed 429 with the tenant named in the frame), and tenants
//! materialize lazily on first request — cold starts hydrate
//! classifier-free from per-tenant snapshots when available, idle and
//! over-budget tenants are evicted LRU-first with an at-evict snapshot.
//! Single-tenant [`Server::start`] wraps the engine as a one-tenant
//! cluster, keeping every frame schema byte-compatible.
//!
//! Served explanations are bit-identical to the offline
//! `ShahinBatch::explain_*_parallel` drivers for the same seed and warm
//! set — see the determinism notes on [`shahin::WarmEngine`].
//!
//! # Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use shahin::{BatchConfig, MetricsRegistry, WarmEngine, WarmExplainer};
//! use shahin_serve::{ServeConfig, Server};
//! # let (ctx, clf, warm): (shahin_explain::ExplainContext,
//! #     shahin_model::CountingClassifier<shahin_model::MajorityClass>,
//! #     shahin_tabular::Dataset) = unimplemented!();
//!
//! let reg = MetricsRegistry::new();
//! let engine = Arc::new(WarmEngine::prime(
//!     BatchConfig::default(),
//!     WarmExplainer::Lime(Default::default()),
//!     ctx, clf, warm, 7, &reg,
//! ));
//! let handle = Server::start(engine, ServeConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! // ... clients connect, send {"id":1,"method":"explain","row":0} ...
//! handle.shutdown();
//! let served = handle.wait();
//! println!("drained cleanly ({served} requests served)");
//! ```

pub mod monitor;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;

pub use monitor::write_atomic;
pub use protocol::{parse_request, MetricsFormat, Request, StatsSummary, TenantStat, WireError};
pub use queue::{Admission, PushError};
pub use server::{ServeConfig, Server, ServerHandle, MAX_FRAME_LEN};
