//! Responsible-AI audit: explain *every* prediction of a model with Anchor
//! rules and summarize which rules the model relies on — the
//! "explanation summarization" scenario that motivates batch explanation
//! generation in the paper's introduction.
//!
//! ```sh
//! cargo run --release --example audit_rules
//! ```

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{BatchConfig, ShahinBatch};
use shahin_explain::{AnchorExplainer, ExplainContext};
use shahin_fim::Itemset;
use shahin_model::{CountingClassifier, ForestParams, RandomForest};
use shahin_tabular::{train_test_split, DatasetPreset};

fn main() {
    let seed = 7;
    let mut rng = StdRng::seed_from_u64(seed);

    // A recidivism-style dataset: the paper's canonical fairness/audit
    // setting.
    let (data, labels) = DatasetPreset::Recidivism.spec(0.5).generate(seed);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let clf = CountingClassifier::new(forest);
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);

    // Audit the first 400 held-out predictions.
    let batch = split
        .test
        .select(&(0..400.min(split.test.n_rows())).collect::<Vec<_>>());
    let shahin = ShahinBatch::new(BatchConfig::default());
    let res = shahin.explain_anchor(&ctx, &clf, &batch, &AnchorExplainer::default(), seed);

    println!(
        "audited {} predictions with {} classifier invocations ({:.0} per tuple)\n",
        batch.n_rows(),
        res.metrics.invocations,
        res.metrics.invocations_per_tuple()
    );

    // Summarize: which anchor rules recur, per predicted class?
    let mut by_rule: HashMap<(u8, Itemset), (usize, f64, f64)> = HashMap::new();
    for e in &res.explanations {
        let entry = by_rule
            .entry((e.anchored_class, e.rule.clone()))
            .or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 += e.precision;
        entry.2 += e.coverage;
    }
    let mut summary: Vec<_> = by_rule.into_iter().collect();
    summary.sort_by_key(|(_, (count, _, _))| std::cmp::Reverse(*count));

    println!("top recurring anchors (rule -> tuples, avg precision, avg coverage):");
    for ((class, rule), (count, prec_sum, cov_sum)) in summary.into_iter().take(10) {
        println!(
            "  class={class}  {:<28} {:>4} tuples  prec {:.2}  cov {:.2}",
            pretty_rule(&rule, &batch),
            count,
            prec_sum / count as f64,
            cov_sum / count as f64
        );
    }
}

fn pretty_rule(rule: &Itemset, batch: &shahin_tabular::Dataset) -> String {
    if rule.is_empty() {
        return "(no anchor found)".into();
    }
    rule.items()
        .iter()
        .map(|it| format!("{}={}", batch.schema().attr(it.attr as usize).name, it.code))
        .collect::<Vec<_>>()
        .join(" AND ")
}
