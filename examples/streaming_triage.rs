//! Streaming triage: explanation requests arrive one at a time (a loan
//! officer reviewing flagged applications) and must be answered
//! immediately — the paper's streaming scenario (§3.5).
//!
//! Shahin warms up with no savings, then periodically mines frequent
//! itemsets over the recent stream and keeps a budgeted repository of
//! reusable, pre-labeled perturbations.
//!
//! ```sh
//! cargo run --release --example streaming_triage
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::baseline::sequential_shap;
use shahin::{ShahinStreaming, StreamingConfig};
use shahin_explain::{ExplainContext, KernelShapExplainer, ShapParams};
use shahin_model::{CountingClassifier, ForestParams, RandomForest};
use shahin_tabular::{train_test_split, DatasetPreset};

fn main() {
    let seed = 11;
    let mut rng = StdRng::seed_from_u64(seed);

    // A lending-club-shaped dataset: loan default prediction.
    let (data, labels) = DatasetPreset::LendingClub.spec(0.2).generate(seed);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let clf = CountingClassifier::new(forest);
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);

    let stream = split
        .test
        .select(&(0..600.min(split.test.n_rows())).collect::<Vec<_>>());
    let shap = KernelShapExplainer::new(ShapParams {
        n_samples: 128,
        ..Default::default()
    });

    // Baseline: every request handled from scratch.
    let seq = sequential_shap(&ctx, &clf, &stream, &shap, 64, seed);

    // Streaming Shahin with a 4 MB repository, refreshed every 100 tuples.
    let streaming = ShahinStreaming::new(StreamingConfig {
        memory_budget_bytes: 4 << 20,
        refresh_every: 100,
        ..Default::default()
    });
    let opt = streaming.explain_shap(&ctx, &clf, &stream, &shap, 64, seed);

    println!(
        "stream of {} requests (SHAP, lending-club shape)\n",
        stream.n_rows()
    );
    println!("method              invocations   inv/request");
    for (name, r) in [("from-scratch", &seq), ("shahin-streaming", &opt)] {
        println!(
            "{name:<18} {:>12}   {:>8.1}",
            r.metrics.invocations,
            r.metrics.invocations_per_tuple()
        );
    }
    println!(
        "\ninvocation speedup: {:.1}x  (repository peak {} KB, {} itemsets tracked)",
        seq.metrics.invocations as f64 / opt.metrics.invocations as f64,
        opt.metrics.store_bytes / 1024,
        opt.metrics.n_frequent
    );

    // The explanation for the most recent request.
    let e = opt.explanations.last().expect("non-empty stream");
    println!("\nlatest request — top-5 feature attributions:");
    for &attr in &e.top_k(5) {
        println!(
            "  {:<10} phi {:+.4}",
            stream.schema().attr(attr).name,
            e.weights[attr]
        );
    }
}
