//! Quickstart: explain a batch of predictions with Shahin and compare
//! against the one-at-a-time baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::baseline::sequential_lime;
use shahin::{BatchConfig, ShahinBatch};
use shahin_explain::{ExplainContext, LimeExplainer, LimeParams};
use shahin_model::{CountingClassifier, ForestParams, RandomForest};
use shahin_tabular::{train_test_split, DatasetPreset};

fn main() {
    let seed = 42;
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. Data: a synthetic stand-in for Census-Income with the same shape
    //    (27 categorical + 15 numeric attributes, skewed values).
    let (data, labels) = DatasetPreset::CensusIncome.spec(0.25).generate(seed);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    println!(
        "dataset: {} train rows, {} explainable rows, schema {}",
        split.train.n_rows(),
        split.test.n_rows(),
        split.train.schema()
    );

    // 2. Black box: a Random Forest, instrumented so we can count how many
    //    times each method invokes it.
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    let clf = CountingClassifier::new(forest);

    // 3. Explanation context: discretizer + training statistics, fitted
    //    once and shared by everything.
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);

    // 4. Explain a batch of 500 predictions with LIME, both ways.
    let batch = split.test.select(&(0..500).collect::<Vec<_>>());
    let lime = LimeExplainer::new(LimeParams {
        n_samples: 300,
        ..Default::default()
    });

    let seq = sequential_lime(&ctx, &clf, &batch, &lime, seed);
    let shahin = ShahinBatch::new(BatchConfig::default());
    let opt = shahin.explain_lime(&ctx, &clf, &batch, &lime, seed);

    println!("\nmethod           invocations   wall      per-tuple");
    for (name, r) in [("sequential", &seq), ("shahin-batch", &opt)] {
        println!(
            "{name:<16} {:>11}   {:>7.2}s  {:.4}s",
            r.metrics.invocations,
            r.metrics.wall.as_secs_f64(),
            r.metrics.per_tuple_secs()
        );
    }
    println!(
        "\ninvocation speedup: {:.1}x  ({} frequent itemsets materialized)",
        seq.metrics.invocations as f64 / opt.metrics.invocations as f64,
        opt.metrics.n_frequent
    );

    // 5. Inspect one explanation: the top-5 attributes for tuple 0.
    let e = &opt.explanations[0];
    println!("\ntop-5 attributes for tuple 0 (positive-class weights):");
    for &attr in &e.top_k(5) {
        println!(
            "  {:<10} weight {:+.4}",
            batch.schema().attr(attr).name,
            e.weights[attr]
        );
    }
}
