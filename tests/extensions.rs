//! Integration tests for the extensions beyond the paper's core scope:
//! model-agnosticism (GBM black box), FP-Growth mining inside the batch
//! driver, adaptive LIME, parallel drivers, summarization, and CSV
//! round-trips feeding the pipeline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::metrics::speedup_invocations;
use shahin::{
    run, summarize_attributions, top_k_overlap, BatchConfig, ExplainerKind, Method, Miner,
    ShahinBatch,
};
use shahin_explain::{
    local_fidelity, ExplainContext, KernelShapExplainer, LimeExplainer, LimeParams, ShapParams,
};
use shahin_model::{CountingClassifier, GbmParams, GradientBoosting};
use shahin_tabular::{read_csv, train_test_split, Dataset, DatasetPreset};

fn gbm_world(
    seed: u64,
) -> (
    ExplainContext,
    CountingClassifier<GradientBoosting>,
    Dataset,
) {
    let (data, labels) = DatasetPreset::CensusIncome.spec(0.04).generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let gbm = GradientBoosting::fit(
        &split.train,
        &split.train_labels,
        &GbmParams {
            n_rounds: 15,
            ..Default::default()
        },
        &mut rng,
    );
    let ctx = ExplainContext::fit(&split.train, 400, &mut rng);
    let clf = CountingClassifier::new(gbm);
    let rows: Vec<usize> = (0..50.min(split.test.n_rows())).collect();
    (ctx, clf, split.test.select(&rows))
}

#[test]
fn shahin_is_model_agnostic_gbm_black_box() {
    // Same speedup story with a completely different model family — the
    // point of §4.1's "this does not materially affect the conclusions".
    let (ctx, clf, batch) = gbm_world(1);
    let kind = ExplainerKind::Lime(LimeExplainer::new(LimeParams {
        n_samples: 150,
        ..Default::default()
    }));
    let seq = run(&Method::Sequential, &kind, &ctx, &clf, &batch, 3);
    let opt = run(
        &Method::Batch(Default::default()),
        &kind,
        &ctx,
        &clf,
        &batch,
        3,
    );
    let s = speedup_invocations(&seq.metrics, &opt.metrics);
    assert!(s > 1.5, "GBM black box broke the speedup: {s:.2}");
}

#[test]
fn fpgrowth_miner_produces_equivalent_batch_results() {
    let (ctx, clf, batch) = gbm_world(2);
    let lime = LimeExplainer::new(LimeParams {
        n_samples: 120,
        ..Default::default()
    });
    let ap = ShahinBatch::new(BatchConfig {
        miner: Miner::Apriori,
        ..Default::default()
    })
    .explain_lime(&ctx, &clf, &batch, &lime, 7);
    let fp = ShahinBatch::new(BatchConfig {
        miner: Miner::FpGrowth,
        ..Default::default()
    })
    .explain_lime(&ctx, &clf, &batch, &lime, 7);
    // Identical itemsets + identical seeds → identical explanations.
    assert_eq!(ap.metrics.n_frequent, fp.metrics.n_frequent);
    assert_eq!(ap.explanations, fp.explanations);
    assert_eq!(ap.metrics.invocations, fp.metrics.invocations);
}

#[test]
fn adaptive_lime_saves_against_full_lime_with_similar_answer() {
    let (ctx, clf, batch) = gbm_world(3);
    let lime = LimeExplainer::new(LimeParams {
        n_samples: 800,
        ..Default::default()
    });
    let inst = batch.instance(0);
    let mut rng = StdRng::seed_from_u64(5);
    let full = lime.explain(&ctx, &clf, &inst, &mut rng);
    clf.reset();
    let (approx, n_used) = lime.explain_adaptive(&ctx, &clf, &inst, 100, 0.02, &mut rng);
    assert!(n_used < 800, "no adaptive saving: {n_used}");
    assert_eq!(clf.invocations(), n_used as u64);
    // The top-3 attribute sets should mostly agree.
    let overlap = top_k_overlap(
        std::slice::from_ref(&full),
        std::slice::from_ref(&approx),
        3,
    );
    assert!(overlap >= 1.0 / 3.0, "approximation too loose: {overlap}");
}

#[test]
fn reuse_does_not_degrade_local_fidelity() {
    let (ctx, clf, batch) = gbm_world(4);
    let kind = ExplainerKind::Lime(LimeExplainer::new(LimeParams {
        n_samples: 300,
        ..Default::default()
    }));
    let seq = run(&Method::Sequential, &kind, &ctx, &clf, &batch, 9);
    let opt = run(
        &Method::Batch(Default::default()),
        &kind,
        &ctx,
        &clf,
        &batch,
        9,
    );
    let mut rng = StdRng::seed_from_u64(11);
    let mut seq_r2 = 0.0;
    let mut opt_r2 = 0.0;
    let n_probe = 10;
    for row in 0..n_probe {
        let inst = batch.instance(row);
        seq_r2 += local_fidelity(
            &ctx,
            &clf,
            &inst,
            seq.explanations[row].weights().expect("weights"),
            300,
            &mut rng,
        );
        opt_r2 += local_fidelity(
            &ctx,
            &clf,
            &inst,
            opt.explanations[row].weights().expect("weights"),
            300,
            &mut rng,
        );
    }
    seq_r2 /= n_probe as f64;
    opt_r2 /= n_probe as f64;
    assert!(
        opt_r2 > seq_r2 - 0.15,
        "reuse hurt local fidelity: shahin {opt_r2:.3} vs sequential {seq_r2:.3}"
    );
}

#[test]
fn parallel_batch_equals_serial_reference() {
    let (ctx, clf, batch) = gbm_world(5);
    let shap = KernelShapExplainer::new(ShapParams {
        n_samples: 64,
        ..Default::default()
    });
    let with_threads = |n: usize| {
        ShahinBatch::new(BatchConfig {
            n_threads: Some(n),
            ..Default::default()
        })
    };
    let par1 = with_threads(1).explain_shap_parallel(&ctx, &clf, &batch, &shap, 20, 13);
    let par4 = with_threads(4).explain_shap_parallel(&ctx, &clf, &batch, &shap, 20, 13);
    assert_eq!(par1.explanations, par4.explanations);
}

#[test]
fn csv_roundtrip_feeds_the_full_pipeline() {
    // Generate → CSV → parse → train → explain: the adoption path.
    let (data, labels) = DatasetPreset::Recidivism.spec(0.03).generate(6);
    let mut buf = Vec::new();
    let dicts = vec![Vec::new(); data.n_attrs()];
    shahin_tabular::write_csv(&mut buf, &data, &dicts, Some(("label", &labels)))
        .expect("serialize");
    let csv = read_csv(buf.as_slice(), Some("label")).expect("parse");
    assert_eq!(csv.data.n_rows(), data.n_rows());
    let labels2 = csv.labels.expect("labels survive");
    let mut rng = StdRng::seed_from_u64(7);
    let split = train_test_split(&csv.data, &labels2, 1.0 / 3.0, &mut rng);
    let gbm = GradientBoosting::fit(
        &split.train,
        &split.train_labels,
        &GbmParams {
            n_rounds: 8,
            ..Default::default()
        },
        &mut rng,
    );
    let ctx = ExplainContext::fit(&split.train, 200, &mut rng);
    let clf = CountingClassifier::new(gbm);
    let batch = split.test.select(&(0..20).collect::<Vec<_>>());
    let lime = LimeExplainer::new(LimeParams {
        n_samples: 80,
        ..Default::default()
    });
    let res = ShahinBatch::default().explain_lime(&ctx, &clf, &batch, &lime, 9);
    assert_eq!(res.explanations.len(), 20);
    let summary = summarize_attributions(&res.explanations);
    assert_eq!(summary.n, 20);
    assert_eq!(summary.mean_abs_weight.len(), batch.n_attrs());
}
