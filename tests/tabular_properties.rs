//! Property-based tests for the tabular substrate: discretization
//! invariants, statistics sampling bounds, synthetic-generator shape, and
//! CSV round-trips.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use shahin_tabular::{
    mdlp_cut_points, read_csv, train_test_split, write_csv, Attribute, Column, Dataset,
    Discretizer, Feature, Schema, TrainingStats,
};

fn numeric_dataset(values: Vec<f64>) -> Dataset {
    let schema = Arc::new(Schema::new(vec![Attribute::numeric("x")]));
    Dataset::new(schema, vec![Column::Num(values)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn discretizer_bins_are_monotone(
        mut values in proptest::collection::vec(-100.0f64..100.0, 8..60),
        probes in proptest::collection::vec(-120.0f64..120.0, 2..10),
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let d = numeric_dataset(values);
        let disc = Discretizer::fit(&d);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bins: Vec<u32> = sorted.iter()
            .map(|&v| disc.code(0, Feature::Num(v)))
            .collect();
        prop_assert!(bins.windows(2).all(|w| w[0] <= w[1]),
            "bins not monotone: {bins:?}");
        prop_assert!(bins.iter().all(|&b| b < disc.n_codes(0)));
    }

    #[test]
    fn undiscretize_lands_in_its_bin(
        values in proptest::collection::vec(-50.0f64..50.0, 16..100),
        seed in 0u64..1000,
    ) {
        let d = numeric_dataset(values);
        let disc = Discretizer::fit(&d);
        let mut rng = StdRng::seed_from_u64(seed);
        for bin in 0..disc.n_codes(0) {
            for _ in 0..10 {
                let f = disc.undiscretize(0, bin, &mut rng);
                prop_assert_eq!(disc.code(0, f), bin);
            }
        }
    }

    #[test]
    fn training_stats_sample_within_domain(
        codes in proptest::collection::vec(0u32..6, 4..60),
        seed in 0u64..1000,
    ) {
        let table = shahin_tabular::DiscreteTable::new(vec![codes.clone()]);
        let stats = TrainingStats::fit(&table, &[6]);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let c = stats.sample_code(0, &mut rng);
            prop_assert!(c < 6);
            // Never sample something unseen.
            prop_assert!(codes.contains(&c), "sampled unseen code {c}");
        }
        // Frequencies sum to 1.
        let total: f64 = (0..6u32).map(|c| stats.frequency(0, c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn split_partitions_and_preserves_labels(
        n in 10usize..80,
        frac in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let schema = Arc::new(Schema::new(vec![Attribute::numeric("x")]));
        let d = Dataset::new(schema, vec![Column::Num((0..n).map(|i| i as f64).collect())]);
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let s = train_test_split(&d, &labels, frac, &mut rng);
        prop_assert_eq!(s.train.n_rows() + s.test.n_rows(), n);
        for r in 0..s.train.n_rows() {
            let x = s.train.feature(r, 0).num() as usize;
            prop_assert_eq!(s.train_labels[r], (x % 2) as u8);
        }
    }

    #[test]
    fn mdlp_cuts_are_sorted_and_within_range(
        mut values in proptest::collection::vec(-20.0f64..20.0, 8..80),
        flip in -10.0f64..10.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let labels: Vec<u8> = values.iter().map(|&v| u8::from(v > flip)).collect();
        let cuts = mdlp_cut_points(&values, &labels, 8);
        prop_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "unsorted {cuts:?}");
        prop_assert!(cuts.len() < 8);
        if let (Some(&first), Some(&last)) = (cuts.first(), cuts.last()) {
            prop_assert!(first >= values[0]);
            prop_assert!(last <= values[values.len() - 1]);
        }
    }

    #[test]
    fn csv_roundtrip_preserves_numeric_data(
        rows in proptest::collection::vec((0u32..5, -100.0f64..100.0), 2..30),
    ) {
        let schema = Arc::new(Schema::new(vec![
            Attribute::categorical("c", 5),
            Attribute::numeric("x"),
        ]));
        let data = Dataset::new(
            Arc::clone(&schema),
            vec![
                Column::Cat(rows.iter().map(|r| r.0).collect()),
                Column::Num(rows.iter().map(|r| r.1).collect()),
            ],
        );
        let mut buf = Vec::new();
        let dicts = vec![Vec::new(); 2];
        write_csv(&mut buf, &data, &dicts, None).expect("write");
        let parsed = read_csv(buf.as_slice(), None).expect("parse");
        prop_assert_eq!(parsed.data.n_rows(), data.n_rows());
        for r in 0..data.n_rows() {
            // Numeric column roundtrips exactly through display formatting.
            let orig = data.feature(r, 1).num();
            let back = parsed.data.feature(r, 1).num();
            prop_assert!((orig - back).abs() < 1e-9, "{orig} vs {back}");
        }
    }
}
