//! Equivalence tests for the cache-conscious layouts (DESIGN.md §5g): the
//! bitset containment engine must agree bit-for-bit with the legacy
//! postings index, the CSR-flattened forest with the nested trees, and the
//! end-to-end drivers must produce identical explanations and invocation
//! counts under either representation at 1/2/8 threads.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{run, BatchConfig, ExplainerKind, Explanation, MatchEngine, Method};
use shahin_explain::{ExplainContext, KernelShapExplainer, LimeExplainer, LimeParams, ShapParams};
use shahin_fim::{BitsetDomain, Item, Itemset, ItemsetIndex, MatchScratch};
use shahin_model::{Classifier, CountingClassifier, ForestLayout, ForestParams, RandomForest};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

/// A random non-empty itemset over `n_attrs` attributes with codes below
/// `card`: between 1 and 3 items on distinct attributes.
fn itemset_strategy(n_attrs: usize, card: u32) -> impl Strategy<Value = Itemset> {
    proptest::collection::btree_map(0..n_attrs, 0..card, 1..=3)
        .prop_map(|m| Itemset::new(m.into_iter().map(|(a, c)| Item::new(a, c)).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bitset containment == postings containment == brute force, on
    /// random families and rows. `n_attrs × card` ranges past 64 so the
    /// multi-word (`W > 1`) mask path is exercised, and rows draw codes
    /// beyond `card` so out-of-dictionary handling is covered.
    #[test]
    fn bitset_matches_postings_and_brute_force(
        sets in proptest::collection::vec(itemset_strategy(12, 10), 1..24),
        rows in proptest::collection::vec(
            proptest::collection::vec(0u32..14, 12), 1..16),
    ) {
        let domain = BitsetDomain::new(&sets);
        let index = ItemsetIndex::new(&sets);
        let mut scratch = MatchScratch::new();
        for row in &rows {
            let via_bits = domain.contained_in_with(row, &mut scratch);
            let via_postings = index.contained_in_with(row, &mut scratch.counts);
            prop_assert_eq!(&via_bits, &via_postings, "row {:?}", row);
            let brute: Vec<u32> = sets
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contained_in(row))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(via_bits, brute, "row {:?}", row);
        }
    }

    /// A domain wider than one `u64` word: every tracked itemset is still
    /// found on a row made of exactly its items.
    #[test]
    fn wide_domains_overflow_words_correctly(
        sets in proptest::collection::vec(itemset_strategy(20, 12), 8..32),
    ) {
        let domain = BitsetDomain::new(&sets);
        if domain.n_bits() <= 64 {
            // Narrow draw; the single-word path is covered elsewhere.
            return Ok(());
        }
        prop_assert!(domain.words() >= 2);
        let mut scratch = MatchScratch::new();
        for (id, set) in sets.iter().enumerate() {
            // A row agreeing with `set` everywhere it constrains and
            // out-of-dictionary (no bits) elsewhere.
            let mut row = vec![u32::MAX; 20];
            for item in set.items() {
                row[item.attr as usize] = item.code;
            }
            let ids = domain.contained_in_with(&row, &mut scratch);
            prop_assert!(ids.contains(&(id as u32)), "itemset {id} lost");
            for &got in &ids {
                prop_assert!(sets[got as usize].contained_in(&row));
            }
        }
    }
}

fn forest_world() -> (Dataset, RandomForest, ExplainContext, Dataset) {
    let (data, labels) = DatasetPreset::CensusIncome.spec(0.05).generate(17);
    let mut rng = StdRng::seed_from_u64(17);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams {
            n_trees: 12,
            ..Default::default()
        },
        &mut rng,
    );
    let ctx = ExplainContext::fit(&split.train, 500, &mut rng);
    let rows: Vec<usize> = (0..30.min(split.test.n_rows())).collect();
    let batch = split.test.select(&rows);
    (split.train, forest, ctx, batch)
}

#[test]
fn flat_and_nested_predictions_are_bit_identical_at_every_worker_count() {
    let (train, forest, _, _) = forest_world();
    assert_eq!(forest.layout(), ForestLayout::Flat);
    let nested = forest.clone().with_layout(ForestLayout::Nested);
    let instances: Vec<Vec<shahin_tabular::Feature>> = (0..train.n_rows().min(200))
        .map(|r| train.instance(r))
        .collect();
    for workers in [1usize, 2, 8] {
        let flat_out = forest.predict_batch_with(&instances, workers);
        let nested_out = nested.predict_batch_with(&instances, workers);
        assert_eq!(flat_out, nested_out, "workers {workers}");
    }
    for inst in &instances {
        assert_eq!(forest.predict_proba(inst), nested.predict_proba(inst));
    }
}

fn assert_same_explanations(a: &[Explanation], b: &[Explanation], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: tuple count");
    for (x, y) in a.iter().zip(b) {
        match (x, y) {
            (Explanation::Weights(w1), Explanation::Weights(w2)) => {
                assert_eq!(w1, w2, "{what}: weights differ")
            }
            (Explanation::Rule(r1), Explanation::Rule(r2)) => {
                assert_eq!(r1, r2, "{what}: rules differ")
            }
            _ => panic!("{what}: mismatched explanation kinds"),
        }
    }
}

/// The tentpole guarantee, end-to-end: swapping both hot-path layouts at
/// once (bitset+flat vs postings+nested) changes nothing observable — the
/// LIME and SHAP drivers return bit-identical explanations and invocation
/// counts at 1, 2 and 8 threads.
#[test]
fn drivers_are_bit_identical_across_layouts_and_threads() {
    let (_, forest, ctx, batch) = forest_world();
    let flat_clf = CountingClassifier::new(forest.clone());
    let nested_clf = CountingClassifier::new(forest.with_layout(ForestLayout::Nested));
    let kinds = [
        ExplainerKind::Lime(LimeExplainer::new(LimeParams {
            n_samples: 120,
            ..Default::default()
        })),
        ExplainerKind::Shap(KernelShapExplainer::new(ShapParams {
            n_samples: 64,
            ..Default::default()
        })),
    ];
    for kind in &kinds {
        for threads in [1usize, 2, 8] {
            let config = |engine| BatchConfig {
                n_threads: Some(threads),
                match_engine: engine,
                ..Default::default()
            };
            let method = |engine| {
                if threads == 1 {
                    Method::Batch(config(engine))
                } else {
                    Method::BatchParallel(config(engine))
                }
            };
            flat_clf.reset();
            let new_run = run(
                &method(MatchEngine::Bitset),
                kind,
                &ctx,
                &flat_clf,
                &batch,
                23,
            );
            let new_inv = flat_clf.invocations();
            nested_clf.reset();
            let old_run = run(
                &method(MatchEngine::Postings),
                kind,
                &ctx,
                &nested_clf,
                &batch,
                23,
            );
            let old_inv = nested_clf.invocations();
            let what = format!("{} x{threads}", kind.name());
            assert_eq!(new_inv, old_inv, "{what}: invocation counts differ");
            assert_same_explanations(&new_run.explanations, &old_run.explanations, &what);
        }
    }
}
