//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use shahin_fim::{apriori, fpgrowth, AprioriParams, Item, Itemset, ItemsetIndex};
use shahin_linalg::{constrained_wls, kendall_tau, ridge, Matrix};
use shahin_tabular::DiscreteTable;

/// Strategy: a small discrete table with bounded code domains.
fn table_strategy() -> impl Strategy<Value = DiscreteTable> {
    (2usize..6, 4usize..40).prop_flat_map(|(n_attrs, n_rows)| {
        proptest::collection::vec(proptest::collection::vec(0u32..4, n_rows), n_attrs)
            .prop_map(DiscreteTable::new)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apriori_downward_closure(table in table_strategy(), sup in 0.1f64..0.9) {
        let res = apriori(&table, &AprioriParams {
            min_support: sup,
            max_len: 3,
            max_itemsets: usize::MAX,
        });
        let sets: std::collections::HashSet<_> =
            res.frequent.iter().map(|(s, _)| s.clone()).collect();
        for (s, _) in &res.frequent {
            for sub in s.immediate_subsets() {
                if !sub.is_empty() {
                    prop_assert!(sets.contains(&sub),
                        "{s} frequent but subset {sub} missing");
                }
            }
        }
    }

    #[test]
    fn apriori_counts_are_exact(table in table_strategy(), sup in 0.2f64..0.8) {
        let res = apriori(&table, &AprioriParams {
            min_support: sup,
            max_len: 2,
            max_itemsets: usize::MAX,
        });
        for (set, count) in &res.frequent {
            let brute = (0..table.n_rows())
                .filter(|&r| set.contained_in(&table.row(r)))
                .count() as u64;
            prop_assert_eq!(*count, brute);
        }
    }

    #[test]
    fn negative_border_is_infrequent_with_frequent_subsets(
        table in table_strategy(), sup in 0.2f64..0.8
    ) {
        let res = apriori(&table, &AprioriParams {
            min_support: sup,
            max_len: 3,
            max_itemsets: usize::MAX,
        });
        let min_count = ((sup * table.n_rows() as f64).ceil() as u64).max(1);
        let freq: std::collections::HashSet<_> =
            res.frequent.iter().map(|(s, _)| s.clone()).collect();
        for nb in &res.negative_border {
            let count = (0..table.n_rows())
                .filter(|&r| nb.contained_in(&table.row(r)))
                .count() as u64;
            prop_assert!(count < min_count, "{nb} on border but frequent");
            for sub in nb.immediate_subsets() {
                if !sub.is_empty() {
                    prop_assert!(freq.contains(&sub));
                }
            }
        }
    }

    #[test]
    fn itemset_index_matches_brute_force(table in table_strategy()) {
        // Index the frequent itemsets of the table and verify containment
        // queries against the naive definition, for every row.
        let res = apriori(&table, &AprioriParams {
            min_support: 0.2,
            max_len: 3,
            max_itemsets: usize::MAX,
        });
        let sets: Vec<Itemset> = res.frequent.into_iter().map(|(s, _)| s).collect();
        let index = ItemsetIndex::new(&sets);
        for r in 0..table.n_rows() {
            let row = table.row(r);
            let got = index.contained_in(&row);
            let brute: Vec<u32> = sets.iter().enumerate()
                .filter(|(_, s)| s.contained_in(&row))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, brute);
        }
    }

    #[test]
    fn itemset_subset_relation_is_consistent_with_union(
        a in proptest::collection::btree_map(0usize..6, 0u32..4, 0..4),
        b in proptest::collection::btree_map(0usize..6, 0u32..4, 0..4),
    ) {
        // Itemsets carry at most one item per attribute; a union is only
        // well-defined when the operands agree on shared attributes, so
        // make b consistent with a on any overlap.
        let a_set = Itemset::new(a.iter().map(|(&x, &c)| Item::new(x, c)).collect());
        let b_set = Itemset::new(
            b.iter()
                .map(|(&x, &c)| Item::new(x, *a.get(&x).unwrap_or(&c)))
                .collect(),
        );
        let u = a_set.union(&b_set);
        prop_assert!(a_set.is_subset_of(&u));
        prop_assert!(b_set.is_subset_of(&u));
        prop_assert!(a_set.is_subset_of(&a_set));
        prop_assert_eq!(u.len() <= a_set.len() + b_set.len(), true);
    }

    #[test]
    fn fpgrowth_equals_apriori(table in table_strategy(), sup in 0.1f64..0.9) {
        // The two miners must agree exactly: same itemsets, same counts,
        // same order.
        let p = AprioriParams { min_support: sup, max_len: 3, max_itemsets: usize::MAX };
        let ap = apriori(&table, &p).frequent;
        let fp = fpgrowth(&table, &p);
        prop_assert_eq!(ap, fp);
    }

    #[test]
    fn kendall_tau_bounds_and_self_correlation(
        w in proptest::collection::vec(-10.0f64..10.0, 2..12)
    ) {
        let tau = kendall_tau(&w, &w);
        prop_assert_eq!(tau, 1.0);
        let rev: Vec<f64> = w.iter().rev().copied().collect();
        let t = kendall_tau(&w, &rev);
        prop_assert!((-1.0..=1.0).contains(&t));
    }

    #[test]
    fn ridge_interpolates_constant_targets(
        xs in proptest::collection::vec(-5.0f64..5.0, 4..20),
        c in -3.0f64..3.0,
    ) {
        let n = xs.len();
        let x = Matrix::from_rows(n, 1, xs);
        let y = vec![c; n];
        let fit = ridge(&x, &y, &vec![1.0; n], 1.0);
        prop_assert!((fit.predict(&[0.0]) - c).abs() < 1e-6);
        prop_assert!(fit.coefficients[0].abs() < 1e-6);
    }

    #[test]
    fn constrained_wls_always_satisfies_efficiency(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..=1.0, 3), 4..16),
        base in -1.0f64..1.0,
        fx in -1.0f64..1.0,
    ) {
        let n = rows.len();
        let z = Matrix::from_rows(n, 3,
            rows.iter().flat_map(|r| r.iter().map(|v| v.round())).collect());
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let w = vec![1.0; n];
        let phi = constrained_wls(&z, &y, &w, base, fx);
        let total: f64 = phi.iter().sum();
        prop_assert!((total - (fx - base)).abs() < 1e-6,
            "efficiency violated: {} vs {}", total, fx - base);
        prop_assert!(phi.iter().all(|p| p.is_finite()));
    }
}
