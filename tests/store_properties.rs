//! Property-based tests over the perturbation store and the GREEDY cache:
//! budget invariants under arbitrary operation sequences, and soundness of
//! every lookup result.

use proptest::prelude::*;

use shahin::{PerturbationStore, TaggedLruCache};
use shahin_explain::LabeledSample;
use shahin_fim::{Item, Itemset, MatchScratch};

const N_ATTRS: usize = 5;

fn sample_strategy() -> impl Strategy<Value = LabeledSample> {
    (proptest::collection::vec(0u32..4, N_ATTRS), 0.0f64..=1.0).prop_map(|(codes, proba)| {
        LabeledSample {
            codes: codes.into_boxed_slice(),
            proba,
        }
    })
}

fn itemsets() -> Vec<Itemset> {
    // A fixed family over the 5-attribute space: all singletons of code 0
    // and 1, plus a few pairs.
    let mut sets = Vec::new();
    for a in 0..N_ATTRS {
        for c in 0..2u32 {
            sets.push(Itemset::new(vec![Item::new(a, c)]));
        }
    }
    sets.push(Itemset::new(vec![Item::new(0, 0), Item::new(1, 0)]));
    sets.push(Itemset::new(vec![Item::new(2, 1), Item::new(3, 1)]));
    sets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_never_exceeds_budget(
        ops in proptest::collection::vec((0u32..12, sample_strategy()), 1..80),
        budget_kb in 1usize..8,
    ) {
        let sets = itemsets();
        let budget = budget_kb * 256 + PerturbationStore::new(sets.clone(), usize::MAX).used_bytes();
        let mut store = PerturbationStore::new(sets.clone(), budget);
        for (id, mut sample) in ops {
            let id = id % sets.len() as u32;
            // Force the sample to contain its target itemset.
            for item in sets[id as usize].items() {
                sample.codes[item.attr as usize] = item.code;
            }
            store.insert(id, sample);
            prop_assert!(store.used_bytes() <= budget,
                "used {} over budget {budget}", store.used_bytes());
            prop_assert!(store.peak_bytes() >= store.used_bytes());
        }
    }

    #[test]
    fn store_matching_is_sound_and_complete(
        inserts in proptest::collection::vec((0u32..12, sample_strategy()), 0..40),
        probe in proptest::collection::vec(0u32..4, N_ATTRS),
    ) {
        let sets = itemsets();
        let mut store = PerturbationStore::new(sets.clone(), usize::MAX);
        for (id, mut sample) in inserts {
            let id = id % sets.len() as u32;
            for item in sets[id as usize].items() {
                sample.codes[item.attr as usize] = item.code;
            }
            store.insert(id, sample);
        }
        let mut scratch = MatchScratch::new();
        let matched = store.matching(&probe, &mut scratch);
        // Sound: every matched itemset really is contained and stocked.
        for &id in &matched {
            prop_assert!(sets[id as usize].contained_in(&probe));
            prop_assert!(!store.samples(id).is_empty());
        }
        // Complete: every contained, stocked itemset is reported.
        for (id, set) in sets.iter().enumerate() {
            if set.contained_in(&probe) && !store.samples(id as u32).is_empty() {
                prop_assert!(matched.contains(&(id as u32)), "missed itemset {set}");
            }
        }
        // Every stored sample still contains its itemset.
        for id in 0..sets.len() as u32 {
            for s in store.samples(id) {
                prop_assert!(sets[id as usize].contained_in(&s.codes));
            }
        }
    }

    #[test]
    fn greedy_cache_budget_and_lookup_soundness(
        ops in proptest::collection::vec(
            (proptest::collection::vec(0u32..4, N_ATTRS), sample_strategy()),
            1..60),
        budget in 256usize..4096,
        probe in proptest::collection::vec(0u32..4, N_ATTRS),
    ) {
        let mut cache = TaggedLruCache::new(budget);
        for (tuple, sample) in &ops {
            cache.insert(tuple, sample.clone());
            prop_assert!(cache.used_bytes() <= budget);
        }
        // Every lookup hit must be a valid conditional sample for the
        // probe: wherever the hit agreed with its source tuple, it must
        // also agree with the probe. We can't see the tags from outside,
        // but a necessary consequence is checkable: any attr where the hit
        // differs from the probe must have differed from *some* source —
        // the stronger guarantee is enforced internally; here we check the
        // cache returns at most what it stores and never panics.
        let hits = cache.lookup(&probe, 100);
        prop_assert!(hits.len() <= cache.n_samples());
        // Drain returns exactly what is resident and empties the cache.
        let n = cache.n_samples();
        let drained = cache.drain_samples();
        prop_assert_eq!(drained.len(), n);
        prop_assert_eq!(cache.used_bytes(), 0);
        prop_assert_eq!(cache.n_samples(), 0);
    }

    #[test]
    fn greedy_cache_hits_are_valid_conditionals(
        source in proptest::collection::vec(0u32..3, N_ATTRS),
        samples in proptest::collection::vec(sample_strategy(), 1..20),
        probe in proptest::collection::vec(0u32..3, N_ATTRS),
    ) {
        // Insert everything against one known source tuple; then any hit
        // for `probe` must agree with `probe` wherever it agreed with
        // `source` (the full-tag containment contract).
        let mut cache = TaggedLruCache::new(usize::MAX);
        for s in &samples {
            cache.insert(&source, s.clone());
        }
        for hit in cache.lookup(&probe, 100) {
            for a in 0..N_ATTRS {
                if hit.codes[a] == source[a] {
                    prop_assert_eq!(hit.codes[a], probe[a],
                        "hit reused despite frozen-attr mismatch at {}", a);
                }
            }
        }
    }
}
