//! Property-based tests for the observability primitives: concurrent
//! counter increments and histogram recordings must never lose updates,
//! and a histogram's bucket counts must always sum to its sample count.

use proptest::prelude::*;

use shahin_obs::{bucket_index, bucket_upper_ns, MetricsRegistry};

/// Recorded samples all land in their bucket and nowhere else.
fn bucket_totals(reg: &MetricsRegistry, name: &str) -> (u64, u64, u64) {
    let snap = reg.snapshot();
    let h = &snap.histograms[name];
    let bucket_sum: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
    (h.count, bucket_sum, h.sum_ns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_counter_increments_lose_no_updates(
        n_threads in 1usize..8,
        per_thread in 1u64..500,
    ) {
        let reg = MetricsRegistry::new();
        let counter = reg.counter("test.hits");
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                });
            }
        });
        prop_assert_eq!(counter.get(), n_threads as u64 * per_thread);
        prop_assert_eq!(reg.snapshot().counter("test.hits"), n_threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_lose_no_samples(
        n_threads in 1usize..8,
        samples in proptest::collection::vec(0u64..10_000_000, 1..200),
    ) {
        let reg = MetricsRegistry::new();
        let hist = reg.histogram("test.latency");
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let hist = hist.clone();
                let samples = &samples;
                scope.spawn(move || {
                    for &ns in samples {
                        hist.record_ns(ns);
                    }
                });
            }
        });
        let n = (n_threads * samples.len()) as u64;
        let expected_sum: u64 = samples.iter().sum::<u64>() * n_threads as u64;
        let (count, bucket_sum, sum_ns) = bucket_totals(&reg, "test.latency");
        prop_assert_eq!(count, n, "samples lost");
        prop_assert_eq!(bucket_sum, n, "bucket counts disagree with sample count");
        prop_assert_eq!(sum_ns, expected_sum, "sum of recorded values drifted");
    }

    #[test]
    fn every_value_lands_in_a_bucket_containing_it(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(v <= bucket_upper_ns(idx), "value above its bucket bound");
        if idx > 0 {
            prop_assert!(v > bucket_upper_ns(idx - 1), "value fits a lower bucket");
        }
    }

    #[test]
    fn gauge_max_is_a_watermark(values in proptest::collection::vec(0u64..u64::MAX, 1..50)) {
        let reg = MetricsRegistry::new();
        let gauge = reg.gauge("test.bytes");
        for &v in &values {
            gauge.max(v);
        }
        prop_assert_eq!(gauge.get(), *values.iter().max().expect("non-empty"));
    }

    #[test]
    fn mixed_concurrent_metrics_stay_consistent(
        per_thread in 1u64..200,
    ) {
        // Counters and histograms hammered together through one registry:
        // the snapshot must be internally consistent for both.
        let reg = MetricsRegistry::new();
        let counter = reg.counter("mixed.count");
        let hist = reg.histogram("mixed.latency");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.add(2);
                        hist.record_ns(t * 1000 + i);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("mixed.count"), 4 * 2 * per_thread);
        let h = &snap.histograms["mixed.latency"];
        prop_assert_eq!(h.count, 4 * per_thread);
        prop_assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4 * per_thread);
    }
}

#[test]
fn json_dump_contains_every_metric_kind() {
    let reg = MetricsRegistry::new();
    reg.counter("a.hits").add(3);
    reg.gauge("a.bytes").set(17);
    reg.histogram("a.latency").record_ns(1000);
    let json = reg.snapshot().to_json();
    assert!(json.contains("\"a.hits\": 3"), "counter missing: {json}");
    assert!(json.contains("\"a.bytes\": 17"), "gauge missing: {json}");
    assert!(json.contains("\"a.latency\""), "histogram missing: {json}");
    assert!(json.contains("\"count\": 1"), "histogram count missing");
    assert!(json.contains("\"buckets\""), "buckets missing");
}
