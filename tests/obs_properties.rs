//! Property-based tests for the observability primitives: concurrent
//! counter increments and histogram recordings must never lose updates,
//! a histogram's bucket counts must always sum to its sample count, and
//! the per-tuple provenance records emitted by a real Shahin-Batch run
//! must reconcile exactly with the registry's store counters — at any
//! thread count.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{run_with_obs, BatchConfig, ExplainerKind, Method, ProvenanceSink};
use shahin_explain::{ExplainContext, LimeExplainer, LimeParams};
use shahin_model::{CountingClassifier, ForestParams, RandomForest};
use shahin_obs::{bucket_index, bucket_upper_ns, MetricsRegistry, ProvenanceRecord};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

/// Recorded samples all land in their bucket and nowhere else.
fn bucket_totals(reg: &MetricsRegistry, name: &str) -> (u64, u64, u64) {
    let snap = reg.snapshot();
    let h = &snap.histograms[name];
    let bucket_sum: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
    (h.count, bucket_sum, h.sum_ns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn concurrent_counter_increments_lose_no_updates(
        n_threads in 1usize..8,
        per_thread in 1u64..500,
    ) {
        let reg = MetricsRegistry::new();
        let counter = reg.counter("test.hits");
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        counter.inc();
                    }
                });
            }
        });
        prop_assert_eq!(counter.get(), n_threads as u64 * per_thread);
        prop_assert_eq!(reg.snapshot().counter("test.hits"), n_threads as u64 * per_thread);
    }

    #[test]
    fn concurrent_histogram_records_lose_no_samples(
        n_threads in 1usize..8,
        samples in proptest::collection::vec(0u64..10_000_000, 1..200),
    ) {
        let reg = MetricsRegistry::new();
        let hist = reg.histogram("test.latency");
        std::thread::scope(|scope| {
            for _ in 0..n_threads {
                let hist = hist.clone();
                let samples = &samples;
                scope.spawn(move || {
                    for &ns in samples {
                        hist.record_ns(ns);
                    }
                });
            }
        });
        let n = (n_threads * samples.len()) as u64;
        let expected_sum: u64 = samples.iter().sum::<u64>() * n_threads as u64;
        let (count, bucket_sum, sum_ns) = bucket_totals(&reg, "test.latency");
        prop_assert_eq!(count, n, "samples lost");
        prop_assert_eq!(bucket_sum, n, "bucket counts disagree with sample count");
        prop_assert_eq!(sum_ns, expected_sum, "sum of recorded values drifted");
    }

    #[test]
    fn every_value_lands_in_a_bucket_containing_it(v in 0u64..u64::MAX) {
        let idx = bucket_index(v);
        prop_assert!(v <= bucket_upper_ns(idx), "value above its bucket bound");
        if idx > 0 {
            prop_assert!(v > bucket_upper_ns(idx - 1), "value fits a lower bucket");
        }
    }

    #[test]
    fn gauge_max_is_a_watermark(values in proptest::collection::vec(0u64..u64::MAX, 1..50)) {
        let reg = MetricsRegistry::new();
        let gauge = reg.gauge("test.bytes");
        for &v in &values {
            gauge.max(v);
        }
        prop_assert_eq!(gauge.get(), *values.iter().max().expect("non-empty"));
    }

    #[test]
    fn mixed_concurrent_metrics_stay_consistent(
        per_thread in 1u64..200,
    ) {
        // Counters and histograms hammered together through one registry:
        // the snapshot must be internally consistent for both.
        let reg = MetricsRegistry::new();
        let counter = reg.counter("mixed.count");
        let hist = reg.histogram("mixed.latency");
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let counter = counter.clone();
                let hist = hist.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.add(2);
                        hist.record_ns(t * 1000 + i);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("mixed.count"), 4 * 2 * per_thread);
        let h = &snap.histograms["mixed.latency"];
        prop_assert_eq!(h.count, 4 * per_thread);
        prop_assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4 * per_thread);
    }
}

struct World {
    ctx: ExplainContext,
    clf: CountingClassifier<RandomForest>,
    test: Dataset,
}

/// One shared small workload: forest training dominates the cost of these
/// properties, so build it once and vary only batch size and threads.
fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(11);
        let mut rng = StdRng::seed_from_u64(11);
        let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
        let forest = RandomForest::fit(
            &split.train,
            &split.train_labels,
            &ForestParams {
                n_trees: 10,
                ..Default::default()
            },
            &mut rng,
        );
        World {
            ctx: ExplainContext::fit(&split.train, 500, &mut rng),
            clf: CountingClassifier::new(forest),
            test: split.test,
        }
    })
}

/// Runs a Shahin-Batch LIME batch with a provenance sink attached and
/// returns the records plus the registry they must reconcile with.
fn run_traced(n_threads: usize, batch_n: usize) -> (Vec<ProvenanceRecord>, MetricsRegistry) {
    let w = world();
    let rows: Vec<usize> = (0..batch_n.min(w.test.n_rows())).collect();
    let batch = w.test.select(&rows);
    let cfg = BatchConfig {
        n_threads: Some(n_threads),
        ..Default::default()
    };
    let method = if n_threads == 1 {
        Method::Batch(cfg)
    } else {
        Method::BatchParallel(cfg)
    };
    let kind = ExplainerKind::Lime(LimeExplainer::new(LimeParams {
        n_samples: 80,
        ..Default::default()
    }));
    let reg = MetricsRegistry::new();
    let sink = Arc::new(ProvenanceSink::new());
    reg.attach_provenance_sink(sink.clone());
    run_with_obs(&method, &kind, &w.ctx, &w.clf, &batch, 5, &reg);
    (sink.records(), reg)
}

proptest! {
    // Every case is a full batch run; keep the case count low and the
    // batches small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn provenance_reconciles_with_counters_at_any_thread_count(
        n_threads in 1usize..5,
        batch_n in 8usize..32,
    ) {
        let (records, reg) = run_traced(n_threads, batch_n);
        let snap = reg.snapshot();

        // One record per explained tuple, each internally consistent:
        // the reuse split must account for every surrogate sample.
        prop_assert_eq!(records.len(), batch_n);
        let mut tuples: Vec<u32> = records.iter().map(|r| r.tuple).collect();
        tuples.sort_unstable();
        prop_assert_eq!(tuples, (0..batch_n as u32).collect::<Vec<_>>());
        for r in &records {
            prop_assert_eq!(
                r.samples_reused + r.samples_fresh, r.tau,
                "tuple {}: reused {} + fresh {} != tau {}",
                r.tuple, r.samples_reused, r.samples_fresh, r.tau
            );
        }

        // The JSONL totals and the registry's store counters are two
        // independent tallies of the same traffic.
        let reused: u64 = records.iter().map(|r| r.samples_reused).sum();
        let matched: u64 = records.iter().map(|r| r.matched_itemsets.len() as u64).sum();
        let misses: u64 = records.iter().map(|r| r.store_misses).sum();
        let available: u64 = records.iter().map(|r| r.samples_available).sum();
        prop_assert_eq!(records.len() as u64, snap.counter("store.lookups"));
        prop_assert_eq!(matched, snap.counter("store.hits"));
        prop_assert_eq!(misses, snap.counter("store.misses"));
        prop_assert_eq!(available, snap.counter("store.samples_reused"));
        prop_assert_eq!(reused, snap.gauge("provenance.samples_reused"));
        prop_assert_eq!(records.len() as u64, snap.gauge("provenance.records"));
    }

    #[test]
    fn provenance_is_thread_count_invariant(batch_n in 8usize..24) {
        // The reuse lineage is a statement about the algorithm, not the
        // schedule: modulo which worker ran the tuple (thread, wall_ns),
        // every field must be identical at any thread count.
        let strip = |records: Vec<ProvenanceRecord>| {
            let mut r: Vec<_> = records
                .into_iter()
                .map(|r| (r.tuple, r.matched_itemsets, r.store_misses,
                          r.samples_available, r.samples_reused,
                          r.samples_fresh, r.tau, r.invocations))
                .collect();
            r.sort_unstable();
            r
        };
        let (seq, _) = run_traced(1, batch_n);
        let baseline = strip(seq);
        for n_threads in [2usize, 4] {
            let (par, _) = run_traced(n_threads, batch_n);
            prop_assert_eq!(&baseline, &strip(par), "diverged at {} threads", n_threads);
        }
    }
}

#[test]
fn json_dump_contains_every_metric_kind() {
    let reg = MetricsRegistry::new();
    reg.counter("a.hits").add(3);
    reg.gauge("a.bytes").set(17);
    reg.histogram("a.latency").record_ns(1000);
    let json = reg.snapshot().to_json();
    assert!(json.contains("\"a.hits\": 3"), "counter missing: {json}");
    assert!(json.contains("\"a.bytes\": 17"), "gauge missing: {json}");
    assert!(json.contains("\"a.latency\""), "histogram missing: {json}");
    assert!(json.contains("\"count\": 1"), "histogram count missing");
    assert!(json.contains("\"buckets\""), "buckets missing");
}
