//! Property-based recovery tests over the warm-snapshot subsystem: no
//! damaged snapshot — random bit flips, random truncations, any seeded
//! corruption class — may ever hydrate a warm engine, and every rejection
//! must be a typed [`shahin::SnapshotError`], never a panic. The donor
//! snapshot is built once; each case damages a copy and attempts to
//! hydrate through the same public path `shahin-cli serve --warm-from`
//! uses.

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::fault::{corrupt, Corruption};
use shahin::{BatchConfig, MetricsRegistry, SnapshotError, WarmEngine, WarmExplainer};
use shahin_explain::{ExplainContext, LimeExplainer, LimeParams};
use shahin_model::{CountingClassifier, MajorityClass};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

const SEED: u64 = 11;

fn setup() -> (ExplainContext, CountingClassifier<MajorityClass>, Dataset) {
    let (data, labels) = DatasetPreset::Recidivism.spec(0.05).generate(5);
    let mut rng = StdRng::seed_from_u64(5);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
    let clf = CountingClassifier::new(MajorityClass::fit(&split.train_labels));
    let rows: Vec<usize> = (0..20.min(split.test.n_rows())).collect();
    (ctx, clf, split.test.select(&rows))
}

fn explainer() -> WarmExplainer {
    WarmExplainer::Lime(LimeExplainer::new(LimeParams {
        n_samples: 40,
        ..Default::default()
    }))
}

/// The donor snapshot, built once per test binary.
fn donor_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (ctx, clf, warm) = setup();
        let reg = MetricsRegistry::new();
        let donor = WarmEngine::prime(BatchConfig::default(), explainer(), ctx, clf, warm, SEED, &reg);
        donor.snapshot_bytes()
    })
}

fn hydrate(bytes: &[u8]) -> Result<WarmEngine<MajorityClass>, SnapshotError> {
    let (ctx, clf, warm) = setup();
    WarmEngine::prime_from_snapshot(
        BatchConfig::default(),
        explainer(),
        ctx,
        clf,
        warm,
        SEED,
        &MetricsRegistry::new(),
        bytes,
    )
}

#[test]
fn the_undamaged_donor_snapshot_hydrates() {
    let eng = hydrate(donor_bytes()).expect("pristine snapshot must hydrate");
    assert_eq!(eng.invocations(), 0, "hydration is classifier-free");
    assert!(eng.store_entries() > 0, "warm state came along");
}

#[test]
fn rejected_snapshots_degrade_to_a_cold_start() {
    use shahin::obs::names;
    let damaged = corrupt(donor_bytes(), Corruption::BitFlip, 7);
    let (ctx, clf, warm) = setup();
    let reg = MetricsRegistry::new();
    let (eng, rejection) = WarmEngine::prime_warm_or_cold(
        BatchConfig::default(),
        explainer(),
        ctx,
        clf,
        warm,
        SEED,
        &reg,
        Some(&damaged),
    );
    let err = rejection.expect("damaged snapshot must be rejected");
    assert!(!err.kind().is_empty());
    assert!(eng.invocations() > 0, "cold prime re-materialized the store");
    assert!(eng.store_entries() > 0, "cold start still serves warm");
    let snap = reg.snapshot();
    assert_eq!(snap.counter(names::PERSIST_LOAD_REJECTED), 1);
    assert_eq!(snap.counter(names::PERSIST_LOADS_OK), 0);

    // And the pristine snapshot goes the warm way through the same API.
    let (ctx, clf, warm) = setup();
    let reg = MetricsRegistry::new();
    let (eng, rejection) = WarmEngine::prime_warm_or_cold(
        BatchConfig::default(),
        explainer(),
        ctx,
        clf,
        warm,
        SEED,
        &reg,
        Some(donor_bytes()),
    );
    assert!(rejection.is_none());
    assert_eq!(eng.invocations(), 0);
    assert_eq!(reg.snapshot().counter(names::PERSIST_LOADS_OK), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single bit flip anywhere in the file — header, framing, or
    /// payload — is caught by magic/version/fingerprint validation or a
    /// section CRC. Nothing slips through, nothing panics.
    #[test]
    fn any_single_bit_flip_is_rejected(pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let bytes = donor_bytes();
        let idx = ((bytes.len() as f64 * pos_frac) as usize).min(bytes.len() - 1);
        let mut damaged = bytes.to_vec();
        damaged[idx] ^= 1u8 << bit;
        let Some(err) = hydrate(&damaged).err() else {
            panic!("flip at byte {idx} bit {bit} was accepted");
        };
        // Typed, attributable rejection — the CLI logs kind() and counts
        // persist.load_rejected off exactly this.
        prop_assert!(!err.kind().is_empty());
    }

    /// Any truncation point yields a typed rejection.
    #[test]
    fn any_truncation_is_rejected(cut_frac in 0.0f64..1.0) {
        let bytes = donor_bytes();
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        let Some(err) = hydrate(&bytes[..cut]).err() else {
            panic!("truncation at byte {cut} was accepted");
        };
        prop_assert!(
            matches!(err.kind(), "truncated" | "bad_magic" | "crc_mismatch"),
            "cut at {} -> {}", cut, err.kind()
        );
    }

    /// Every seeded corruption class is rejected for every seed.
    #[test]
    fn every_corruption_class_is_rejected(class_idx in 0usize..4, seed in 0u64..u64::MAX) {
        let class = Corruption::ALL[class_idx];
        let damaged = corrupt(donor_bytes(), class, seed);
        let Some(err) = hydrate(&damaged).err() else {
            panic!("{class:?} with seed {seed} was accepted");
        };
        if class == Corruption::StaleVersion {
            prop_assert_eq!(err.kind(), "wrong_version");
        }
    }
}
