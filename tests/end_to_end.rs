//! End-to-end integration: data generation → forest training → all three
//! explainers under every execution method, with sane outputs and real
//! invocation savings.

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::metrics::speedup_invocations;
use shahin::{run, ExplainerKind, Greedy, Method};
use shahin_explain::{
    AnchorExplainer, ExplainContext, KernelShapExplainer, LimeExplainer, LimeParams, ShapParams,
};
use shahin_model::{accuracy, Classifier, CountingClassifier, ForestParams, RandomForest};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset};

struct World {
    ctx: ExplainContext,
    clf: CountingClassifier<RandomForest>,
    batch: Dataset,
}

fn world(preset: DatasetPreset, n_batch: usize, seed: u64) -> World {
    let (data, labels) = preset.spec(0.05).generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams {
            n_trees: 10,
            ..Default::default()
        },
        &mut rng,
    );
    // Sanity: the model actually learned something, otherwise the
    // explanations are meaningless.
    let preds: Vec<u8> = (0..split.test.n_rows())
        .map(|r| forest.predict(&split.test.instance(r)))
        .collect();
    assert!(
        accuracy(&preds, &split.test_labels) > 0.6,
        "forest failed to learn the planted concept"
    );
    let ctx = ExplainContext::fit(&split.train, 500, &mut rng);
    let clf = CountingClassifier::new(forest);
    let rows: Vec<usize> = (0..n_batch.min(split.test.n_rows())).collect();
    World {
        ctx,
        clf,
        batch: split.test.select(&rows),
    }
}

fn kinds() -> Vec<ExplainerKind> {
    vec![
        ExplainerKind::Lime(LimeExplainer::new(LimeParams {
            n_samples: 120,
            ..Default::default()
        })),
        ExplainerKind::Anchor(AnchorExplainer::default()),
        ExplainerKind::Shap(KernelShapExplainer::new(ShapParams {
            n_samples: 64,
            ..Default::default()
        })),
    ]
}

#[test]
fn every_method_explains_every_tuple() {
    let w = world(DatasetPreset::Recidivism, 25, 1);
    for kind in kinds() {
        for method in [
            Method::Sequential,
            Method::Dist(4),
            Method::Greedy(Greedy::default_budget(&w.batch)),
            Method::Batch(Default::default()),
            Method::Streaming(Default::default()),
        ] {
            let r = run(&method, &kind, &w.ctx, &w.clf, &w.batch, 3);
            assert_eq!(
                r.explanations.len(),
                w.batch.n_rows(),
                "{} × {} lost tuples",
                method.name(),
                kind.name()
            );
            assert!(r.metrics.invocations > 0);
            assert_eq!(r.metrics.n_tuples, w.batch.n_rows());
        }
    }
}

#[test]
fn shahin_batch_saves_invocations_for_all_explainers() {
    let w = world(DatasetPreset::CensusIncome, 60, 2);
    for kind in kinds() {
        let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &w.batch, 5);
        let opt = run(
            &Method::Batch(Default::default()),
            &kind,
            &w.ctx,
            &w.clf,
            &w.batch,
            5,
        );
        let s = speedup_invocations(&seq.metrics, &opt.metrics);
        assert!(s > 1.2, "{}: invocation speedup only {s:.2}", kind.name());
    }
}

#[test]
fn lime_weight_vectors_have_schema_arity() {
    let w = world(DatasetPreset::Covertype, 15, 3);
    let kind = &kinds()[0];
    let r = run(
        &Method::Batch(Default::default()),
        kind,
        &w.ctx,
        &w.clf,
        &w.batch,
        7,
    );
    for e in &r.explanations {
        let fw = e.weights().expect("lime returns weights");
        assert_eq!(fw.weights.len(), w.batch.n_attrs());
        assert!(fw.weights.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn shap_efficiency_holds_under_every_method() {
    let w = world(DatasetPreset::Recidivism, 20, 4);
    let kind = &kinds()[2];
    for method in [
        Method::Sequential,
        Method::Greedy(Greedy::default_budget(&w.batch)),
        Method::Batch(Default::default()),
        Method::Streaming(Default::default()),
    ] {
        let r = run(&method, kind, &w.ctx, &w.clf, &w.batch, 9);
        for e in &r.explanations {
            let fw = e.weights().expect("shap returns weights");
            let total: f64 = fw.weights.iter().sum();
            assert!(
                (total - (fw.local_prediction - fw.intercept)).abs() < 1e-6,
                "{}: efficiency violated",
                method.name()
            );
        }
    }
}

#[test]
fn anchor_rules_are_tuple_predicates_under_every_method() {
    let w = world(DatasetPreset::Recidivism, 15, 5);
    let kind = &kinds()[1];
    let table = w.ctx.discretizer().encode_dataset(&w.batch);
    for method in [
        Method::Sequential,
        Method::Batch(Default::default()),
        Method::Streaming(Default::default()),
    ] {
        let r = run(&method, kind, &w.ctx, &w.clf, &w.batch, 11);
        for (row, e) in r.explanations.iter().enumerate() {
            let rule = e.rule().expect("anchor returns rules");
            assert!(
                rule.rule.contained_in(&table.row(row)),
                "{}: rule not a predicate of its own tuple",
                method.name()
            );
            assert!((0.0..=1.0).contains(&rule.precision));
            assert!((0.0..=1.0).contains(&rule.coverage));
        }
    }
}

#[test]
fn dist_k_reproduces_sequential_explanations_exactly() {
    let w = world(DatasetPreset::Recidivism, 20, 6);
    for kind in kinds() {
        let seq = run(&Method::Sequential, &kind, &w.ctx, &w.clf, &w.batch, 13);
        let dist = run(&Method::Dist(8), &kind, &w.ctx, &w.clf, &w.batch, 13);
        for (a, b) in seq.explanations.iter().zip(&dist.explanations) {
            match (a, b) {
                (shahin::Explanation::Weights(x), shahin::Explanation::Weights(y)) => {
                    assert_eq!(x, y)
                }
                (shahin::Explanation::Rule(x), shahin::Explanation::Rule(y)) => {
                    assert_eq!(x.rule, y.rule)
                }
                _ => panic!("mismatched explanation kinds"),
            }
        }
    }
}
