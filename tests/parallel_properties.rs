//! Property-based tests for the threading primitives: `chunks` partitioning
//! invariants and the determinism of the per-tuple / per-itemset seed
//! streams that make parallel runs reproducible.

use proptest::prelude::*;

use shahin::{chunks, per_itemset_seed, per_tuple_seed};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunks_partition_the_range_exactly(n in 0usize..10_000, k in 0usize..64) {
        let parts = chunks(n, k);
        if n == 0 {
            prop_assert!(parts.is_empty());
            return Ok(());
        }
        // Contiguous, in-order, gap-free cover of 0..n.
        prop_assert_eq!(parts[0].0, 0);
        prop_assert_eq!(parts[parts.len() - 1].1, n);
        for w in parts.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "gap or overlap between chunks");
        }
        for &(start, end) in &parts {
            prop_assert!(start < end, "empty chunk ({start}, {end})");
        }
    }

    #[test]
    fn chunks_are_balanced_and_clamped(n in 1usize..10_000, k in 0usize..64) {
        let parts = chunks(n, k);
        // Thread count is clamped to 1..=n: never more chunks than items,
        // never zero chunks for non-empty input.
        prop_assert_eq!(parts.len(), k.clamp(1, n));
        // Balanced: sizes differ by at most one.
        let sizes: Vec<usize> = parts.iter().map(|&(s, e)| e - s).collect();
        let min = *sizes.iter().min().expect("non-empty");
        let max = *sizes.iter().max().expect("non-empty");
        prop_assert!(max - min <= 1, "unbalanced: min {min}, max {max}");
    }

    #[test]
    fn per_tuple_seed_is_deterministic_and_collision_free(
        base in 0u64..=u64::MAX, idx in 0usize..4096
    ) {
        prop_assert_eq!(per_tuple_seed(base, idx), per_tuple_seed(base, idx));
        // Neighbouring tuples of the same run never share a stream.
        prop_assert_ne!(per_tuple_seed(base, idx), per_tuple_seed(base, idx + 1));
    }

    #[test]
    fn per_itemset_seed_is_deterministic_and_distinct_from_tuples(
        base in 0u64..=u64::MAX, id in 0usize..4096
    ) {
        prop_assert_eq!(per_itemset_seed(base, id), per_itemset_seed(base, id));
        prop_assert_ne!(per_itemset_seed(base, id), per_itemset_seed(base, id + 1));
        // The materialization streams and the per-tuple explanation streams
        // are domain-separated: same (base, index) must not collide.
        prop_assert_ne!(per_itemset_seed(base, id), per_tuple_seed(base, id));
    }

    #[test]
    fn seed_streams_differ_across_runs(idx in 0usize..1024, a in 0u64..1u64 << 48) {
        // Different run seeds give different per-index streams (SplitMix64
        // finalizer mixes the base thoroughly).
        let b = a.wrapping_add(1);
        prop_assert_ne!(per_tuple_seed(a, idx), per_tuple_seed(b, idx));
        prop_assert_ne!(per_itemset_seed(a, idx), per_itemset_seed(b, idx));
    }
}

#[test]
fn chunks_edge_cases() {
    assert_eq!(chunks(0, 0), vec![]);
    assert_eq!(chunks(0, 8), vec![]);
    assert_eq!(chunks(5, 0), vec![(0, 5)]);
    assert_eq!(chunks(5, 1), vec![(0, 5)]);
    assert_eq!(chunks(1, 64), vec![(0, 1)]);
    assert_eq!(chunks(10, 3), vec![(0, 4), (4, 7), (7, 10)]);
}
