//! Property-based tests for the fault-tolerant classifier boundary: the
//! retry budget is a hard bound, a seeded fault schedule yields the same
//! survivors with bit-identical explanations at any thread count, and
//! quarantined tuples leave no trace in the reuse accounting.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{run_with_obs, BatchConfig, ExplainerKind, Method, MetricsRegistry, RunReport};
use shahin_explain::{ExplainContext, LimeExplainer, LimeParams};
use shahin_model::{
    ChaosClassifier, ChaosConfig, Classifier, CountingClassifier, FallibleClassifier, ForestParams,
    PredictError, RandomForest, ResilientClassifier, RetryPolicy,
};
use shahin_tabular::{train_test_split, Dataset, DatasetPreset, Feature};

/// A model that fails every call with a retryable error, counting calls.
struct AlwaysTransient {
    calls: AtomicU64,
}

impl FallibleClassifier for AlwaysTransient {
    fn try_predict_proba(&self, _instance: &[Feature]) -> Result<f64, PredictError> {
        self.calls.fetch_add(1, Ordering::SeqCst);
        Err(PredictError::Transient {
            message: "injected".into(),
        })
    }
}

/// Instant-backoff policy so exhaustion tests don't sleep.
fn fast_policy(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
        ..RetryPolicy::default()
    }
}

/// A fresh chaos world: trained forest behind a seeded fault injector
/// behind the resilient boundary. Rebuilding from the same seed yields an
/// identical model and therefore an identical (content-hashed) fault
/// schedule with pristine burst state.
#[allow(clippy::type_complexity)]
fn chaos_world(
    seed: u64,
    n_batch: usize,
    cfg: &ChaosConfig,
) -> (
    ExplainContext,
    CountingClassifier<ResilientClassifier<ChaosClassifier<RandomForest>>>,
    Dataset,
) {
    let (data, labels) = DatasetPreset::CensusIncome.spec(0.03).generate(seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let split = train_test_split(&data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams {
            n_trees: 5,
            ..Default::default()
        },
        &mut rng,
    );
    let ctx = ExplainContext::fit(&split.train, 300, &mut rng);
    let chaos = ChaosClassifier::new(forest, cfg.clone());
    let clf = CountingClassifier::new(ResilientClassifier::new(chaos, fast_policy(3)));
    let rows: Vec<usize> = (0..split.test.n_rows().min(n_batch)).collect();
    (ctx, clf, split.test.select(&rows))
}

fn lime_kind() -> ExplainerKind {
    ExplainerKind::Lime(LimeExplainer::new(LimeParams {
        n_samples: 60,
        ..Default::default()
    }))
}

fn run_chaos(seed: u64, cfg: &ChaosConfig, n_threads: usize, reg: &MetricsRegistry) -> RunReport {
    let (ctx, clf, batch) = chaos_world(seed, 24, cfg);
    let method = Method::BatchParallel(BatchConfig {
        n_threads: Some(n_threads),
        ..Default::default()
    });
    run_with_obs(&method, &lime_kind(), &ctx, &clf, &batch, seed, reg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn retry_budget_is_a_hard_bound(max_retries in 0u32..6) {
        let inner = AlwaysTransient { calls: AtomicU64::new(0) };
        let clf = ResilientClassifier::new(inner, fast_policy(max_retries));
        let escalated = catch_unwind(AssertUnwindSafe(|| {
            clf.predict_proba(&[Feature::Cat(0)])
        }));
        prop_assert!(escalated.is_err(), "exhaustion must escalate");
        // One initial attempt plus at most `max_retries` retries.
        let calls = clf.inner().calls.load(Ordering::SeqCst);
        prop_assert_eq!(calls, u64::from(max_retries) + 1);
        let snap = clf.snapshot();
        prop_assert_eq!(snap.retries, u64::from(max_retries));
        prop_assert_eq!(snap.giveups, 1);
    }

    #[test]
    fn survivors_are_bit_identical_across_thread_counts(seed in 0u64..64) {
        let cfg = ChaosConfig {
            seed: seed ^ 0xFA17,
            transient_rate: 0.05,
            nan_rate: 0.02,
            panic_rate: 0.01,
            ..Default::default()
        };
        let baseline = run_chaos(seed, &cfg, 1, &MetricsRegistry::disabled());
        for threads in [2usize, 8] {
            let run = run_chaos(seed, &cfg, threads, &MetricsRegistry::disabled());
            // The sticky fault schedule is content-hashed, so the same
            // tuples fail no matter how the batch is carved up...
            let rows = |r: &RunReport| -> Vec<u32> {
                r.report.failures.iter().map(|f| f.row).collect()
            };
            prop_assert_eq!(rows(&baseline), rows(&run), "{} threads", threads);
            prop_assert_eq!(&baseline.report.degraded, &run.report.degraded);
            // ...and the survivors' explanations are bit-identical.
            prop_assert_eq!(baseline.explanations.len(), run.explanations.len());
            for (a, b) in baseline.explanations.iter().zip(&run.explanations) {
                prop_assert_eq!(
                    a.weights().expect("lime output").weights.clone(),
                    b.weights().expect("lime output").weights.clone()
                );
            }
        }
    }

    #[test]
    fn quarantined_tuples_are_absent_from_reuse_accounting(seed in 0u64..64) {
        use std::sync::Arc;
        let cfg = ChaosConfig {
            seed: seed ^ 0x0DD5,
            transient_rate: 0.05,
            nan_rate: 0.0,
            panic_rate: 0.02,
            ..Default::default()
        };
        let reg = MetricsRegistry::new();
        let prov = Arc::new(shahin::ProvenanceSink::new());
        reg.attach_provenance_sink(Arc::clone(&prov));
        let report = run_chaos(seed, &cfg, 4, &reg);

        let records = prov.records();
        let failed: Vec<u32> = report.report.failures.iter().map(|f| f.row).collect();
        // Every tuple either survived (one provenance record) or was
        // quarantined (no record) — nothing is double-counted or lost.
        prop_assert_eq!(records.len() + failed.len(), 24);
        for r in &records {
            prop_assert!(
                !failed.contains(&r.tuple),
                "quarantined tuple {} has a provenance record",
                r.tuple
            );
        }
        // The metrics registry reconciles with the report.
        let snap = reg.snapshot();
        prop_assert_eq!(
            snap.counter("resilience.tuples_failed"),
            failed.len() as u64
        );
        prop_assert_eq!(
            snap.counter("resilience.tuples_degraded"),
            report.report.degraded.len() as u64
        );
        let degraded_records = records.iter().filter(|r| r.degraded).count();
        prop_assert_eq!(degraded_records, report.report.degraded.len());
    }
}
