#!/usr/bin/env bash
# Serving load benchmark: drives the warm micro-batching server and the
# cold per-request offline driver over an identical request schedule and
# writes BENCH_serve.json to the repo root. The warm arm must win on mean
# latency, store hit rate, and classifier invocations per request — see
# bench_compare's `serve` mode for the gated comparison.
#
# Knobs (all optional):
#   SHAHIN_SERVE_REQUESTS     total requests per arm   (default 120)
#   SHAHIN_SERVE_CONCURRENCY  closed-loop clients      (default 4)
#   SHAHIN_SERVE_WARM_ROWS    warm-set size            (default 200)
#   SHAHIN_SERVE_OUT          artifact path            (default BENCH_serve.json)
#   SHAHIN_SEED               base RNG seed            (default 42)
#   SHAHIN_COST_US            simulated classifier cost, µs (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p shahin-bench --bin bench_serve
cargo run --release -q -p shahin-bench --bin bench_serve
