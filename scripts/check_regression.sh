#!/usr/bin/env bash
# Perf-regression gate: reruns the parallel-driver, observability-overhead,
# serving, and data-layout benchmarks at CI scale and diffs the fresh
# artifacts against the committed baselines under baselines/ci/ with
# bench_compare. Exits non-zero when a deterministic count changed or a
# wall-time/speedup tolerance was exceeded.
#
#   scripts/check_regression.sh                     # gate against baselines
#   scripts/check_regression.sh --update-baselines  # regenerate baselines
#
# Knobs (all optional; the baselines were generated with these defaults, and
# bench_compare refuses to diff mismatched workloads):
#   SHAHIN_REG_BATCH       tuples per parallel-bench batch   (default 300)
#   SHAHIN_REG_LATENCY_US  simulated classifier latency, µs  (default 20)
#   SHAHIN_REG_THREADS     thread counts swept               (default 2,4)
#   SHAHIN_REG_OBS_BATCH   tuples per obs-bench batch        (default 400)
#   SHAHIN_REG_OBS_REPS    obs-bench repetitions per arm     (default 7)
#   SHAHIN_REG_SERVE_REQS  serve-bench requests per arm      (default 80)
#   SHAHIN_REG_SERVE_CONC  serve-bench closed-loop clients   (default 4)
#   SHAHIN_REG_OBS_LIVE_REPS  scrape-arm repetitions         (default 7)
#   SHAHIN_REG_TRACE_REPS  tracing-arm repetitions           (default 7)
#   SHAHIN_REG_TENANCY_REQS   tenancy-arm Zipf-mixed requests (default 60)
#   SHAHIN_REG_TENANCY_IDLE_MS tenancy keepalive before evict (default 1500)
#   SHAHIN_REG_LAYOUT_BATCH   tuples per layout-bench batch  (default 1000)
#   SHAHIN_REG_LAYOUT_THREADS layout thread counts swept     (default 1,8)
#   SHAHIN_REG_LAYOUT_REPS    layout runs per arm, min kept  (default 3)
#   SHAHIN_REG_OUT         where fresh artifacts land        (default mktemp)
# Comparison tolerances: see bench_compare (SHAHIN_CMP_TOL_*).
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE_DIR=baselines/ci
BATCH="${SHAHIN_REG_BATCH:-300}"
LATENCY="${SHAHIN_REG_LATENCY_US:-20}"
THREADS="${SHAHIN_REG_THREADS:-2,4}"
OBS_BATCH="${SHAHIN_REG_OBS_BATCH:-400}"
OBS_REPS="${SHAHIN_REG_OBS_REPS:-7}"
SERVE_REQS="${SHAHIN_REG_SERVE_REQS:-80}"
SERVE_CONC="${SHAHIN_REG_SERVE_CONC:-4}"
OBS_LIVE_REPS="${SHAHIN_REG_OBS_LIVE_REPS:-7}"
TRACE_REPS="${SHAHIN_REG_TRACE_REPS:-7}"
TENANCY_REQS="${SHAHIN_REG_TENANCY_REQS:-60}"
TENANCY_IDLE_MS="${SHAHIN_REG_TENANCY_IDLE_MS:-1500}"
LAYOUT_BATCH="${SHAHIN_REG_LAYOUT_BATCH:-1000}"
LAYOUT_THREADS="${SHAHIN_REG_LAYOUT_THREADS:-1,8}"
LAYOUT_REPS="${SHAHIN_REG_LAYOUT_REPS:-3}"

if [[ "${1:-}" == "--update-baselines" ]]; then
    OUT="$BASELINE_DIR"
    mkdir -p "$OUT"
else
    OUT="${SHAHIN_REG_OUT:-$(mktemp -d)}"
    mkdir -p "$OUT"
fi

cargo build --release -p shahin-bench \
    --bin bench_parallel --bin bench_obs --bin bench_serve --bin bench_layout \
    --bin bench_compare

# The obs bench runs first: its arms are short (~100ms) and timing-
# sensitive, and running them on a machine still recovering from the
# parallel bench's minute of all-core busy-wait skews the overheads.
echo "== observability-overhead benchmark (batch=$OBS_BATCH, reps=$OBS_REPS)"
SHAHIN_OBS_BATCH="$OBS_BATCH" SHAHIN_OBS_REPS="$OBS_REPS" \
    SHAHIN_OBS_OUT="$OUT/BENCH_obs.json" \
    target/release/bench_obs

echo "== serving benchmark (requests=$SERVE_REQS, concurrency=$SERVE_CONC)"
SHAHIN_SERVE_REQUESTS="$SERVE_REQS" SHAHIN_SERVE_CONCURRENCY="$SERVE_CONC" \
    SHAHIN_SERVE_OUT="$OUT/BENCH_serve.json" \
    SHAHIN_OBS_LIVE_OUT="$OUT/BENCH_obs_live.json" \
    SHAHIN_OBS_LIVE_REPS="$OBS_LIVE_REPS" \
    SHAHIN_TRACE_OUT="$OUT/BENCH_trace.json" \
    SHAHIN_TRACE_REPS="$TRACE_REPS" \
    SHAHIN_PERSIST_OUT="$OUT/BENCH_persist.json" \
    SHAHIN_PERSIST_REQUESTS="${SHAHIN_REG_PERSIST_REQS:-$SERVE_REQS}" \
    SHAHIN_TENANCY_OUT="$OUT/BENCH_tenancy.json" \
    SHAHIN_TENANCY_REQUESTS="$TENANCY_REQS" \
    SHAHIN_TENANCY_IDLE_MS="$TENANCY_IDLE_MS" \
    target/release/bench_serve

echo "== parallel-driver benchmark (batch=$BATCH, latency=${LATENCY}us, threads=$THREADS)"
SHAHIN_PAR_BATCH="$BATCH" SHAHIN_PAR_LATENCY_US="$LATENCY" \
    SHAHIN_PAR_THREADS="$THREADS" SHAHIN_PAR_OUT="$OUT/BENCH_parallel.json" \
    target/release/bench_parallel

echo "== data-layout benchmark (batch=$LAYOUT_BATCH, threads=$LAYOUT_THREADS, reps=$LAYOUT_REPS)"
SHAHIN_LAYOUT_BATCH="$LAYOUT_BATCH" SHAHIN_LAYOUT_THREADS="$LAYOUT_THREADS" \
    SHAHIN_LAYOUT_REPS="$LAYOUT_REPS" SHAHIN_LAYOUT_OUT="$OUT/BENCH_layout.json" \
    target/release/bench_layout

if [[ "${1:-}" == "--update-baselines" ]]; then
    echo "baselines regenerated under $BASELINE_DIR/ — review and commit them"
    exit 0
fi

echo "== gating against $BASELINE_DIR/"
target/release/bench_compare parallel "$BASELINE_DIR/BENCH_parallel.json" "$OUT/BENCH_parallel.json"
target/release/bench_compare obs "$BASELINE_DIR/BENCH_obs.json" "$OUT/BENCH_obs.json"
target/release/bench_compare serve "$BASELINE_DIR/BENCH_serve.json" "$OUT/BENCH_serve.json"
target/release/bench_compare obs_live "$BASELINE_DIR/BENCH_obs_live.json" "$OUT/BENCH_obs_live.json"
target/release/bench_compare trace "$BASELINE_DIR/BENCH_trace.json" "$OUT/BENCH_trace.json"
target/release/bench_compare persist "$BASELINE_DIR/BENCH_persist.json" "$OUT/BENCH_persist.json"
target/release/bench_compare tenancy "$BASELINE_DIR/BENCH_tenancy.json" "$OUT/BENCH_tenancy.json"
target/release/bench_compare layout "$BASELINE_DIR/BENCH_layout.json" "$OUT/BENCH_layout.json"
echo "perf-regression gate passed (fresh artifacts in $OUT)"
