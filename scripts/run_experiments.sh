#!/bin/bash
set -u
cd "$(dirname "$0")/.."
mkdir -p results
export SHAHIN_COST_US=10 SHAHIN_SEED=42
run() {
  local name=$1 scale=$2
  echo "=== $name (scale $scale) start $(date +%T)"
  SHAHIN_SCALE=$scale ./target/release/$name > results/$name.txt 2> results/$name.err
  echo "=== $name done $(date +%T)"
}
run quality 0.5
run fig6 0.5
run fig7 0.5
run fig5 1
run fig2 1
run fig3 0.5
run fig4 0.5
run table1 1
echo ALL_DONE
