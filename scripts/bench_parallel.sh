#!/usr/bin/env bash
# Benchmarks the multi-threaded Shahin-Batch drivers against the
# sequential driver (LIME / SHAP / Anchor, 2/4/8 worker threads) and
# writes BENCH_parallel.json to the repo root.
#
# Also measures the observability overhead (disabled vs enabled metrics
# registry on the same workload) and writes BENCH_obs.json, which must
# report <3% overhead.
#
# Knobs (all optional):
#   SHAHIN_PAR_BATCH       tuples per batch        (default 5000)
#   SHAHIN_PAR_LATENCY_US  classifier latency, µs  (default 100)
#   SHAHIN_PAR_THREADS     thread counts           (default 2,4,8)
#   SHAHIN_SEED            base RNG seed           (default 42)
#   SHAHIN_OBS_BATCH       overhead-bench tuples   (default 400)
#   SHAHIN_OBS_REPS        overhead-bench reps     (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p shahin-bench --bin bench_parallel --bin bench_obs
cargo run --release -q -p shahin-bench --bin bench_parallel
cargo run --release -q -p shahin-bench --bin bench_obs
