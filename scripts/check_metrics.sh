#!/usr/bin/env bash
# Smoke-checks the observability pipeline end to end: runs a small
# explanation batch through shahin-cli with --metrics-out and validates
# that the JSON dump carries every metric family the instrumentation
# promises (store hits/misses, per-shard Anchor cache counters, per-phase
# span durations, classifier latency histogram buckets). A second,
# parallel run with --trace-out/--provenance-out validates the Chrome
# trace-event export (required keys, monotonic timestamps, balanced B/E
# pairs per thread lane) and the provenance JSONL (required keys, one
# record per tuple, reused + fresh == tau, totals reconciling with the
# metrics snapshot).
#
# The final section smoke-tests the serving path: it starts
# `shahin-cli serve` in the background (with tracing at sample rate 1.0
# so every request's trace is retained), drives it with bench_serve in
# external mode, validates the live observability plane over the admin
# protocol (Prometheus exposition shape, JSON snapshot, windowed `stats`
# summary, extended `ping`, `trace` frames — well-formed span trees,
# durations nesting within parents, exemplar trace ids resolving),
# sends the admin shutdown frame, asserts the server drains cleanly,
# and validates the serve.* metric families plus the trace_id-carrying
# provenance JSONL in the server's output.
#
# The persistence drill then exercises the crash-safety path: a server
# with --snapshot-out takes periodic, admin-frame and SIGUSR1 snapshots
# under load; a copy of its snapshot is bit-flipped; a restart with the
# corrupted --warm-from must come up cold (typed rejection, counted
# under persist.load_rejected) and still serve, while a restart with
# the pristine snapshot must hydrate warm (persist.loads_ok, zero
# classifier invocations).
#
# The multi-tenant drill serves a 3-tenant manifest from one listener:
# requests route by the protocol's `tenant` field, tenants materialize
# lazily on first touch (tenancy.cold_starts), a quota-0 tenant answers
# 429 without materializing, an unknown tenant answers 404, idle
# tenants evict with an at-evict snapshot, and re-admission hydrates
# classifier-free. The tenancy.* aggregates must reconcile with the
# per-tenant tenant.<name>.* families, and provenance/traces must carry
# the tenant tag in multi-tenant mode while the single-tenant artifacts
# from the serve smoke above carry none.
#
# Knobs (all optional):
#   SHAHIN_CHECK_ROWS        synthetic dataset rows    (default 2000)
#   SHAHIN_CHECK_BATCH       tuples to explain         (default 60)
#   SHAHIN_CHECK_SERVE_REQS  serve smoke requests      (default 40)
set -euo pipefail
cd "$(dirname "$0")/.."

ROWS="${SHAHIN_CHECK_ROWS:-2000}"
BATCH="${SHAHIN_CHECK_BATCH:-60}"
SERVE_REQS="${SHAHIN_CHECK_SERVE_REQS:-40}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cargo build --release --bin shahin-cli
cargo build --release -p shahin-bench --bin bench_serve
CLI=target/release/shahin-cli

"$CLI" synth --preset census --rows "$ROWS" --out "$WORKDIR/census.csv"

# LIME exercises the perturbation store + fim/materialize/retrieve/surrogate
# spans and the classifier histogram; Anchor exercises the sharded caches.
"$CLI" explain --csv "$WORKDIR/census.csv" --label label --explainer lime \
    --method batch --batch-size "$BATCH" --metrics-out "$WORKDIR/lime.json"
"$CLI" explain --csv "$WORKDIR/census.csv" --label label --explainer anchor \
    --method batch --batch-size "$BATCH" --metrics-out "$WORKDIR/anchor.json"

python3 - "$WORKDIR/lime.json" "$WORKDIR/anchor.json" <<'PY'
import json, sys

def require(snap, path, kind, where):
    section = snap[kind]
    if path not in section:
        raise SystemExit(f"FAIL: {where}: missing {kind[:-1]} '{path}'")
    return section[path]

lime = json.load(open(sys.argv[1]))
anchor = json.load(open(sys.argv[2]))

for snap, where in ((lime, "lime"), (anchor, "anchor")):
    for section in ("counters", "gauges", "histograms", "value_histograms"):
        if section not in snap:
            raise SystemExit(f"FAIL: {where}: no '{section}' section")
    # Perturbation store traffic and footprint.
    for c in ("store.lookups", "store.hits", "store.misses", "store.samples_reused"):
        require(snap, c, "counters", where)
    if require(snap, "store.peak_bytes", "gauges", where) <= 0:
        raise SystemExit(f"FAIL: {where}: store.peak_bytes is zero")
    # Per-phase wall time: preparation spans must have fired exactly once,
    # retrieval once per tuple.
    for span in ("span.fim.mine", "span.materialize.fill", "span.retrieve.match"):
        h = require(snap, span, "histograms", where)
        if h["count"] == 0 or h["sum_ns"] == 0:
            raise SystemExit(f"FAIL: {where}: span '{span}' recorded nothing")
        if sum(b["count"] for b in h["buckets"]) != h["count"]:
            raise SystemExit(f"FAIL: {where}: '{span}' bucket counts != count")
    # Classifier invocation latency histogram with populated buckets.
    clf = require(snap, "classifier.predict", "histograms", where)
    if clf["count"] == 0 or not clf["buckets"]:
        raise SystemExit(f"FAIL: {where}: classifier.predict histogram empty")
    # The resilience family is pre-registered (all zero on a clean run).
    for c in ("resilience.retries", "resilience.transient_errors",
              "resilience.timeouts", "resilience.invalid_proba",
              "resilience.giveups", "resilience.breaker_opens",
              "resilience.breaker_short_circuits",
              "resilience.panics_isolated", "resilience.tuples_failed",
              "resilience.tuples_degraded"):
        if require(snap, c, "counters", where) != 0:
            raise SystemExit(f"FAIL: {where}: '{c}' nonzero without chaos")

# Explainer-specific families.
require(lime, "span.surrogate.fit", "histograms", "lime")
shard_hits = sum(
    v for k, v in anchor["counters"].items()
    if k.startswith("anchor.shard") and k.endswith(".hits")
)
shard_misses = sum(
    v for k, v in anchor["counters"].items()
    if k.startswith("anchor.shard") and k.endswith(".misses")
)
if "anchor.shard00.hits" not in anchor["counters"]:
    raise SystemExit("FAIL: anchor: per-shard counters not registered")
if shard_hits + shard_misses == 0:
    raise SystemExit("FAIL: anchor: shard caches saw no traffic")
require(anchor, "span.anchor.search", "histograms", "anchor")

print(f"OK: lime dump has {len(lime['counters'])} counters, "
      f"{len(lime['histograms'])} histograms")
print(f"OK: anchor shard caches: {shard_hits} hits / {shard_misses} misses")
print("metrics dump schema check passed")
PY

# Parallel run (two workers) with the full collection pipeline: the trace
# must show at least two worker lanes, the provenance exactly one record
# per explained tuple.
"$CLI" explain --csv "$WORKDIR/census.csv" --label label --explainer lime \
    --method par-2 --batch-size "$BATCH" \
    --metrics-out "$WORKDIR/par.json" \
    --trace-out "$WORKDIR/trace.json" \
    --provenance-out "$WORKDIR/prov.jsonl"

python3 - "$WORKDIR/trace.json" "$WORKDIR/prov.jsonl" "$WORKDIR/par.json" "$BATCH" <<'PY'
import json, sys

trace = json.load(open(sys.argv[1]))
prov_lines = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
metrics = json.load(open(sys.argv[3]))
batch = int(sys.argv[4])

# --- Chrome trace-event schema ---------------------------------------
events = trace.get("traceEvents")
if not isinstance(events, list) or not events:
    raise SystemExit("FAIL: trace: no 'traceEvents' array")
for e in events:
    for key in ("ph", "pid", "tid"):
        if key not in e:
            raise SystemExit(f"FAIL: trace: event missing '{key}': {e}")
    # E events close the innermost open B by nesting and carry no name.
    if e["ph"] in ("B", "i", "M") and "name" not in e:
        raise SystemExit(f"FAIL: trace: event missing 'name': {e}")
    if e["ph"] in ("B", "E", "i") and "ts" not in e:
        raise SystemExit(f"FAIL: trace: timed event missing 'ts': {e}")

# Exported timestamps are globally sorted and per-lane B/E pairs balance
# (every span that begins on a lane also ends on it, properly nested).
ts = [e["ts"] for e in events if e["ph"] in ("B", "E", "i")]
if ts != sorted(ts):
    raise SystemExit("FAIL: trace: timestamps are not monotonic")
depth = {}
for e in events:
    if e["ph"] == "B":
        depth[e["tid"]] = depth.get(e["tid"], 0) + 1
    elif e["ph"] == "E":
        depth[e["tid"]] = depth.get(e["tid"], 0) - 1
        if depth[e["tid"]] < 0:
            raise SystemExit(f"FAIL: trace: E without B on tid {e['tid']}")
if any(d != 0 for d in depth.values()):
    raise SystemExit(f"FAIL: trace: unbalanced B/E pairs: {depth}")
lanes = {e["tid"] for e in events if e["ph"] == "B"}
if len(lanes) < 2:
    raise SystemExit(f"FAIL: trace: expected >=2 worker lanes, got {lanes}")
named = {e["tid"] for e in events
         if e["ph"] == "M" and e.get("name") == "thread_name"}
if not lanes <= named:
    raise SystemExit(f"FAIL: trace: lanes without thread_name: {lanes - named}")

# --- Provenance JSONL -------------------------------------------------
REQUIRED = ("tuple", "method", "explainer", "epoch", "thread",
            "matched_itemsets", "store_misses", "samples_available",
            "samples_reused", "samples_fresh", "tau", "invocations",
            "cache_hits", "cache_misses", "wall_ns", "degraded")
for r in prov_lines:
    for key in REQUIRED:
        if key not in r:
            raise SystemExit(f"FAIL: provenance: record missing '{key}': {r}")
    if r["samples_reused"] + r["samples_fresh"] != r["tau"]:
        raise SystemExit(f"FAIL: provenance: reused+fresh != tau: {r}")
    # Offline drivers have no serving request, hence no trace: both
    # optional keys must be omitted, not null.
    for absent in ("request", "trace_id"):
        if absent in r:
            raise SystemExit(f"FAIL: provenance: offline record carries "
                             f"'{absent}': {r}")
tuples = sorted(r["tuple"] for r in prov_lines)
if tuples != list(range(batch)):
    raise SystemExit(f"FAIL: provenance: expected one record per tuple "
                     f"0..{batch - 1}, got {len(tuples)} records")
if {r["method"] for r in prov_lines} != {"Shahin-Batch-Par2"}:
    raise SystemExit("FAIL: provenance: unexpected method strings")

# --- Reconciliation with the metrics snapshot -------------------------
gauges = metrics["gauges"]
if gauges.get("provenance.records") != len(prov_lines):
    raise SystemExit(f"FAIL: provenance.records gauge "
                     f"{gauges.get('provenance.records')} != "
                     f"{len(prov_lines)} JSONL records")
for gauge, field in (("provenance.samples_reused", "samples_reused"),
                     ("provenance.samples_fresh", "samples_fresh")):
    total = sum(r[field] for r in prov_lines)
    if gauges.get(gauge) != total:
        raise SystemExit(f"FAIL: {gauge} gauge {gauges.get(gauge)} != "
                         f"JSONL total {total}")
matched = sum(len(r["matched_itemsets"]) for r in prov_lines)
if gauges.get("provenance.matched_itemsets") != matched:
    raise SystemExit(f"FAIL: provenance.matched_itemsets gauge "
                     f"{gauges.get('provenance.matched_itemsets')} != "
                     f"JSONL total {matched}")

print(f"OK: trace has {len(events)} events across {len(lanes)} worker lanes, "
      f"balanced and monotonic")
print(f"OK: provenance has {len(prov_lines)} records, one per tuple, "
      f"reconciling with the snapshot")
print("trace + provenance schema check passed")
PY

# Chaos run: inject faults through the resilient boundary and check the
# resilience.* counters fire and reconcile with the provenance export.
# Exit code 2 (some tuples quarantined) is an expected outcome here.
chaos_status=0
"$CLI" explain --csv "$WORKDIR/census.csv" --label label --explainer lime \
    --method par-2 --batch-size "$BATCH" \
    --chaos --chaos-transient 0.05 --chaos-nan 0.02 --chaos-panic 0.005 \
    --metrics-out "$WORKDIR/chaos.json" \
    --provenance-out "$WORKDIR/chaos_prov.jsonl" 2>/dev/null || chaos_status=$?
if [ "$chaos_status" -ne 0 ] && [ "$chaos_status" -ne 2 ]; then
    echo "FAIL: chaos run exited with unexpected status $chaos_status"
    exit 1
fi

python3 - "$WORKDIR/chaos.json" "$WORKDIR/chaos_prov.jsonl" "$BATCH" "$chaos_status" <<'PY'
import json, sys

metrics = json.load(open(sys.argv[1]))
prov_lines = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
batch = int(sys.argv[3])
status = int(sys.argv[4])
counters = metrics["counters"]
gauges = metrics["gauges"]

# Injected transient errors must have been retried and NaN outputs
# sanitized — the boundary was actually exercised.
if counters.get("resilience.transient_errors", 0) == 0:
    raise SystemExit("FAIL: chaos: no transient errors injected")
if counters.get("resilience.retries", 0) == 0:
    raise SystemExit("FAIL: chaos: transient errors were not retried")
if counters.get("resilience.invalid_proba", 0) == 0:
    raise SystemExit("FAIL: chaos: NaN outputs were not sanitized")

# Degraded-mode completion: every tuple either has a provenance record
# (survived) or counts as failed — and the exit code says which happened.
failed = counters.get("resilience.tuples_failed", 0)
if len(prov_lines) + failed != batch:
    raise SystemExit(f"FAIL: chaos: {len(prov_lines)} records + {failed} "
                     f"failed != {batch} tuples")
if (failed > 0) != (status == 2):
    raise SystemExit(f"FAIL: chaos: {failed} failures but exit status {status}")

# Degraded tuples reconcile across counter, gauge, and JSONL.
degraded = sum(1 for r in prov_lines if r["degraded"])
if counters.get("resilience.tuples_degraded") != degraded:
    raise SystemExit(f"FAIL: chaos: resilience.tuples_degraded "
                     f"{counters.get('resilience.tuples_degraded')} != "
                     f"{degraded} degraded JSONL records")
if gauges.get("provenance.degraded") != degraded:
    raise SystemExit(f"FAIL: chaos: provenance.degraded gauge "
                     f"{gauges.get('provenance.degraded')} != {degraded}")

print(f"OK: chaos run injected {counters['resilience.transient_errors']} "
      f"transient errors ({counters['resilience.retries']} retries), "
      f"{failed} tuples quarantined, {degraded} degraded — all reconciled")
print("resilience schema check passed")
PY

# Serving smoke: start the server in the background over the same synthetic
# dataset, drive it with bench_serve in external mode, validate the live
# observability plane over the admin protocol, then shut down and require
# a clean drain plus a serve.* metrics dump.
echo "== serve smoke ($SERVE_REQS requests)"
"$CLI" serve --csv "$WORKDIR/census.csv" --label label --explainer lime \
    --warm-rows 150 --addr 127.0.0.1:0 \
    --port-file "$WORKDIR/serve.port" \
    --metrics-out "$WORKDIR/serve.json" \
    --provenance-out "$WORKDIR/serve_prov.jsonl" \
    --monitor-interval-ms 100 --windows 64 \
    --slo-p99-ms 500 --slo-error-rate 0.01 \
    --trace-sample 1.0 \
    >"$WORKDIR/serve.log" 2>&1 &
serve_pid=$!

for _ in $(seq 1 100); do
    [ -s "$WORKDIR/serve.port" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "FAIL: serve: server died before listening"
        cat "$WORKDIR/serve.log"
        exit 1
    fi
    sleep 0.2
done
if [ ! -s "$WORKDIR/serve.port" ]; then
    echo "FAIL: serve: no port file after 20s"
    cat "$WORKDIR/serve.log"
    exit 1
fi
port="$(tr -d '[:space:]' < "$WORKDIR/serve.port")"

SHAHIN_SERVE_ADDR="127.0.0.1:$port" \
    SHAHIN_SERVE_REQUESTS="$SERVE_REQS" SHAHIN_SERVE_WARM_ROWS=150 \
    SHAHIN_SERVE_OUT="$WORKDIR/BENCH_serve_smoke.json" \
    target/release/bench_serve

# Live observability plane: validate the Prometheus exposition shape,
# the JSON snapshot frame, the windowed `stats` summary, and the
# extended `ping` over the admin protocol, then send the shutdown frame.
python3 - "$port" <<'PY'
import json, re, socket, sys, time

port = int(sys.argv[1])
# Give the monitor at least two 100ms ticks after the load so the window
# ring has folded the burst in.
time.sleep(0.3)

sock = socket.create_connection(("127.0.0.1", port), timeout=10)
rfile = sock.makefile("r", encoding="utf-8")

def frame(method, **kw):
    req = {"id": 1, "method": method, **kw}
    sock.sendall((json.dumps(req) + "\n").encode())
    resp = json.loads(rfile.readline())
    if resp.get("ok") is not True:
        raise SystemExit(f"FAIL: live: '{method}' frame rejected: {resp}")
    return resp

# --- Prometheus exposition shape -------------------------------------
text = frame("metrics", format="prometheus")["metrics"]
types = {}     # family -> declared type
samples = {}   # family -> sample lines
series = []    # full series identifiers (name + labels)
prom_exemplars = []  # (bucket series, trace id) from # EXEMPLAR comments
for line in text.splitlines():
    if not line:
        continue
    if line.startswith("# TYPE "):
        _, _, fam, kind = line.split(" ")
        if fam in types:
            raise SystemExit(f"FAIL: live: duplicate # TYPE for '{fam}'")
        types[fam] = kind
    elif line.startswith("# EXEMPLAR "):
        m = re.fullmatch(r"# EXEMPLAR (\S+_bucket\{le=\"[^\"]+\"\}) trace_id=(\d+)", line)
        if m is None:
            raise SystemExit(f"FAIL: live: malformed # EXEMPLAR line: {line}")
        prom_exemplars.append((m.group(1), int(m.group(2))))
    elif line.startswith("#"):
        raise SystemExit(f"FAIL: live: unexpected comment line: {line}")
    else:
        name_labels, _, value = line.rpartition(" ")
        float(value)  # every sample line must end in a number
        series.append(name_labels)
        # Histogram rows group under their family base; counter families
        # are declared with the `_total` suffix included.
        base = re.sub(r"(_bucket\{.*\}|_sum|_count)$", "", name_labels)
        samples.setdefault(base, []).append(name_labels)
if len(series) != len(set(series)):
    dupes = sorted({s for s in series if series.count(s) > 1})
    raise SystemExit(f"FAIL: live: duplicate series: {dupes[:5]}")
for fam, kind in types.items():
    if fam not in samples:
        raise SystemExit(f"FAIL: live: '# TYPE {fam} {kind}' has no samples")
for fam, kind in types.items():
    if kind == "histogram":
        buckets = [s for s in samples[fam] if s.startswith(fam + "_bucket{")]
        if not buckets:
            raise SystemExit(f"FAIL: live: histogram '{fam}' has no buckets")
        if f'{fam}_bucket{{le="+Inf"}}' not in buckets:
            raise SystemExit(f"FAIL: live: histogram '{fam}' lacks +Inf bucket")
# Every exemplar comment must point at a bucket series emitted above it.
if not prom_exemplars:
    raise SystemExit("FAIL: live: exposition carries no # EXEMPLAR lines "
                     "despite --trace-sample 1.0")
for bucket, _tid in prom_exemplars:
    if bucket not in series:
        raise SystemExit(f"FAIL: live: # EXEMPLAR references unknown series "
                         f"'{bucket}'")

# --- JSON snapshot frame, cross-checked against the exposition --------
snap = frame("metrics", format="json")["snapshot"]
for section in ("counters", "gauges", "histograms", "value_histograms"):
    if section not in snap:
        raise SystemExit(f"FAIL: live: json snapshot lacks '{section}'")

def sanitize(name):
    return re.sub(r"[^a-zA-Z0-9_]", "_", name)

prom_counts = {}
for line in text.splitlines():
    if line.startswith("#"):
        continue
    name_labels, _, value = line.rpartition(" ")
    if name_labels.endswith("_count"):
        prom_counts[name_labels[:-len("_count")]] = int(float(value))
for name, h in snap["histograms"].items():
    fam = sanitize(name) + "_ns"
    if prom_counts.get(fam) != h["count"]:
        raise SystemExit(f"FAIL: live: '{fam}_count' {prom_counts.get(fam)} "
                         f"!= snapshot count {h['count']} for '{name}'")
for name, h in snap["value_histograms"].items():
    fam = sanitize(name)
    if prom_counts.get(fam) != h["count"]:
        raise SystemExit(f"FAIL: live: '{fam}_count' {prom_counts.get(fam)} "
                         f"!= snapshot count {h['count']} for '{name}'")

# The monitor thread's own families are live.
if snap["counters"].get("serve.monitor_ticks", 0) < 2:
    raise SystemExit("FAIL: live: serve.monitor_ticks < 2")
if snap["gauges"].get("serve.warm_entries", 0) <= 0:
    raise SystemExit("FAIL: live: serve.warm_entries gauge not sampled")
for g in ("slo.serve.request.burn_rate", "slo.serve.request.budget_remaining"):
    if g not in snap["gauges"]:
        raise SystemExit(f"FAIL: live: SLO gauge '{g}' not published")

# --- Windowed stats summary ------------------------------------------
stats = frame("stats")["stats"]
for key in ("window_secs", "windows", "req_per_s", "p50_ns", "p99_ns",
            "hit_rate", "queue_depth", "live_connections", "slo"):
    if key not in stats:
        raise SystemExit(f"FAIL: live: stats summary lacks '{key}'")
for key in ("burn_rate", "budget_remaining"):
    if key not in stats["slo"]:
        raise SystemExit(f"FAIL: live: stats.slo lacks '{key}'")
if stats["windows"] < 2:
    raise SystemExit(f"FAIL: live: stats.windows {stats['windows']} < 2")
if stats["p99_ns"] is None:
    raise SystemExit("FAIL: live: windowed p99 is null right after a burst")

# --- Extended ping ----------------------------------------------------
pong = frame("ping")
for key in ("uptime_secs", "version", "warm_entries"):
    if key not in pong:
        raise SystemExit(f"FAIL: live: ping lacks '{key}'")
if pong["warm_entries"] <= 0:
    raise SystemExit("FAIL: live: ping reports an empty warm store")

# --- Request traces ---------------------------------------------------
def check_span_tree(trace):
    spans = trace.get("spans")
    if not spans:
        raise SystemExit(f"FAIL: live: trace {trace.get('trace_id')} "
                         f"has no spans")
    if spans[0]["parent"] is not None or spans[0]["start_ns"] != 0:
        raise SystemExit(f"FAIL: live: span 0 is not a root: {spans[0]}")
    if spans[0]["dur_ns"] != trace["total_ns"]:
        raise SystemExit(f"FAIL: live: root span dur {spans[0]['dur_ns']} "
                         f"!= total_ns {trace['total_ns']}")
    for i, s in enumerate(spans[1:], start=1):
        p = s["parent"]
        if p is None or not (0 <= p < i):
            raise SystemExit(f"FAIL: live: span {i} has a forward or "
                             f"missing parent: {s}")
        parent = spans[p]
        if not (parent["start_ns"] <= s["start_ns"] and
                s["start_ns"] + s["dur_ns"]
                <= parent["start_ns"] + parent["dur_ns"]):
            raise SystemExit(f"FAIL: live: span {i} ({s['name']}) does not "
                             f"nest within its parent ({parent['name']}): "
                             f"{s} vs {parent}")

slowest = frame("trace", slowest=5)
for key in ("traces", "store"):
    if key not in slowest:
        raise SystemExit(f"FAIL: live: slowest-trace frame lacks '{key}'")
if not slowest["traces"]:
    raise SystemExit("FAIL: live: no traces retained at sample rate 1.0")
if slowest["store"]["retained"] <= 0:
    raise SystemExit("FAIL: live: store totals report nothing retained")
durs = [t["total_ns"] for t in slowest["traces"]]
if durs != sorted(durs, reverse=True):
    raise SystemExit(f"FAIL: live: slowest traces not sorted: {durs}")
for t in slowest["traces"]:
    check_span_tree(t)
names = {s["name"] for s in slowest["traces"][0]["spans"]}
expected = {"request", "queue", "batch", "retrieve", "classify", "explain"}
if not expected <= names:
    raise SystemExit(f"FAIL: live: slowest trace lacks stages "
                     f"{expected - names}")

# A clean run retains no error traces, but the selector must answer.
errors = frame("trace", errors=True)
if errors["traces"]:
    raise SystemExit(f"FAIL: live: error traces on a clean run: "
                     f"{errors['traces']}")

# Every latency-histogram exemplar must resolve to a retained trace
# (sample rate 1.0 retains all of them), and both fetch formats must
# agree on the request.
exemplars = snap.get("exemplars", {})
lat = exemplars.get("serve.request_latency")
if not lat:
    raise SystemExit("FAIL: live: no exemplars on serve.request_latency")
for ex in lat:
    tid = ex["trace_id"]
    by_id = frame("trace", trace_id=tid)["trace"]
    if by_id["trace_id"] != tid:
        raise SystemExit(f"FAIL: live: exemplar trace {tid} fetched "
                         f"trace {by_id['trace_id']}")
    check_span_tree(by_id)
    chrome = frame("trace", trace_id=tid, format="chrome")["chrome_trace"]
    events = chrome.get("traceEvents")
    if not events or any(e.get("ph") not in ("X", "M") for e in events):
        raise SystemExit(f"FAIL: live: chrome trace {tid} has non-X/M "
                         f"events: {chrome}")
    complete = [e for e in events if e.get("ph") == "X"]
    if len(complete) != len(by_id["spans"]):
        raise SystemExit(f"FAIL: live: chrome trace {tid} has "
                         f"{len(complete)} X events vs "
                         f"{len(by_id['spans'])} spans")

print(f"OK: live exposition has {len(types)} families, "
      f"{len(series)} series, no duplicates")
print(f"OK: {len(slowest['traces'])} slowest traces well-formed, "
      f"{len(lat)} latency exemplars resolve in both formats")
print(f"OK: stats window spans {stats['window_secs']:.2f}s across "
      f"{stats['windows']} windows (p99 {stats['p99_ns']}ns)")
print("live observability check passed")

sock.sendall(b'{"id": 2, "method": "shutdown"}\n')
resp = json.loads(rfile.readline())
if resp.get("shutting_down") is not True:
    raise SystemExit(f"FAIL: live: shutdown frame rejected: {resp}")
PY

serve_status=0
wait "$serve_pid" || serve_status=$?
if [ "$serve_status" -ne 0 ]; then
    echo "FAIL: serve: server exited with status $serve_status"
    cat "$WORKDIR/serve.log"
    exit 1
fi
if ! grep -q "drained cleanly" "$WORKDIR/serve.log"; then
    echo "FAIL: serve: no clean-drain message in server output"
    cat "$WORKDIR/serve.log"
    exit 1
fi

python3 - "$WORKDIR/serve.json" "$SERVE_REQS" "$WORKDIR/serve_prov.jsonl" <<'PY'
import json, sys

snap = json.load(open(sys.argv[1]))
requests = int(sys.argv[2])
prov_lines = [json.loads(l) for l in open(sys.argv[3]) if l.strip()]
counters, gauges, hists = snap["counters"], snap["gauges"], snap["histograms"]
vhists = snap["value_histograms"]

if counters.get("serve.requests") != requests:
    raise SystemExit(f"FAIL: serve: serve.requests "
                     f"{counters.get('serve.requests')} != {requests}")
if counters.get("serve.batches", 0) == 0:
    raise SystemExit("FAIL: serve: no micro-batches recorded")
if counters.get("serve.connections", 0) < 4:
    raise SystemExit(f"FAIL: serve: expected >=4 connections, got "
                     f"{counters.get('serve.connections')}")
# Clean run: nothing rejected, expired, or quarantined.
for c in ("serve.rejected_overload", "serve.rejected_malformed",
          "serve.rejected_shutdown", "serve.rejected_forbidden",
          "serve.deadline_expired", "serve.quarantined"):
    if counters.get(c, -1) != 0:
        raise SystemExit(f"FAIL: serve: '{c}' is {counters.get(c)} "
                         f"on a clean run")
# Drain semantics: the backlog was fully answered and the flag raised.
if gauges.get("serve.drained") != 1:
    raise SystemExit("FAIL: serve: serve.drained gauge != 1")
if gauges.get("serve.queue_depth") != 0:
    raise SystemExit("FAIL: serve: serve.queue_depth != 0 after drain")
# Per-request and per-batch distributions populated consistently. The
# batch-size distribution is a unitless value histogram, not a
# nanosecond one.
for h in ("serve.queue_wait", "serve.request_latency"):
    if h not in hists:
        raise SystemExit(f"FAIL: serve: missing histogram '{h}'")
if hists["serve.request_latency"]["count"] != requests:
    raise SystemExit(f"FAIL: serve: request_latency count "
                     f"{hists['serve.request_latency']['count']} != {requests}")
if "serve.batch_size" in hists:
    raise SystemExit("FAIL: serve: batch_size must be a value histogram, "
                     "not a ns histogram")
if "serve.batch_size" not in vhists:
    raise SystemExit("FAIL: serve: missing value histogram 'serve.batch_size'")
bs = vhists["serve.batch_size"]
if bs["count"] != counters["serve.batches"]:
    raise SystemExit("FAIL: serve: batch_size samples != serve.batches")
if bs["sum"] != requests:
    raise SystemExit(f"FAIL: serve: batch_size sum {bs['sum']} != "
                     f"{requests} requests")
# The warm repository actually served the traffic.
for c in ("store.lookups", "store.hits"):
    if counters.get(c, 0) == 0:
        raise SystemExit(f"FAIL: serve: '{c}' saw no traffic")
# The live-plane section issued two metrics frames and one stats frame,
# none of which may count as explain traffic.
if counters.get("serve.scrapes", 0) < 3:
    raise SystemExit(f"FAIL: serve: serve.scrapes "
                     f"{counters.get('serve.scrapes')} < 3 admin reads")
if counters.get("serve.monitor_ticks", 0) == 0:
    raise SystemExit("FAIL: serve: monitor thread never ticked")
# The live-plane section fetched traces (2 multi-trace selectors plus 2
# formats per exemplar), counted apart from scrapes.
if counters.get("serve.trace_fetches", 0) < 4:
    raise SystemExit(f"FAIL: serve: serve.trace_fetches "
                     f"{counters.get('serve.trace_fetches')} < 4")
# At sample rate 1.0 the monitor's last tick saw every trace retained,
# none dropped, none evicted (store bound 512 >> request count).
if gauges.get("trace.retained", 0) < requests:
    raise SystemExit(f"FAIL: serve: trace.retained "
                     f"{gauges.get('trace.retained')} < {requests}")
for g in ("trace.dropped", "trace.evicted"):
    if gauges.get(g, -1) != 0:
        raise SystemExit(f"FAIL: serve: '{g}' is {gauges.get(g)} at "
                         f"sample rate 1.0 under the store bound")
# The aggregator saw one monotone registry for the whole run.
if counters.get("obs.counter_resets", -1) != 0:
    raise SystemExit(f"FAIL: serve: obs.counter_resets is "
                     f"{counters.get('obs.counter_resets')}")

# --- Served provenance carries the trace join key ---------------------
if len(prov_lines) != requests:
    raise SystemExit(f"FAIL: serve: {len(prov_lines)} provenance records "
                     f"!= {requests} requests")
for r in prov_lines:
    for key in ("request", "trace_id"):
        if key not in r:
            raise SystemExit(f"FAIL: serve: provenance record lacks "
                             f"'{key}': {r}")
trace_ids = [r["trace_id"] for r in prov_lines]
if len(set(trace_ids)) != len(trace_ids):
    raise SystemExit("FAIL: serve: duplicate trace ids in provenance")

batches = counters["serve.batches"]
print(f"OK: serve smoke answered {requests} requests in {batches} "
      f"micro-batches and drained cleanly")
print(f"OK: {len(prov_lines)} provenance records carry unique trace ids; "
      f"{gauges['trace.retained']} traces retained")
print("serve smoke check passed")
PY

# Persistence drill: snapshot a live server three ways (interval, admin
# frame, SIGUSR1), then restart from a corrupted copy (must reject +
# cold-start + serve) and from the pristine file (must hydrate warm).
echo "== persistence drill"
start_serve() {
    # start_serve <tag> [extra flags...] -> port in $port, pid in $serve_pid
    local tag="$1"; shift
    : > "$WORKDIR/$tag.port"
    "$CLI" serve --csv "$WORKDIR/census.csv" --label label --explainer lime \
        --warm-rows 150 --addr 127.0.0.1:0 \
        --port-file "$WORKDIR/$tag.port" \
        --metrics-out "$WORKDIR/$tag.json" \
        --monitor-interval-ms 100 \
        "$@" \
        >"$WORKDIR/$tag.log" 2>&1 &
    serve_pid=$!
    for _ in $(seq 1 100); do
        [ -s "$WORKDIR/$tag.port" ] && break
        if ! kill -0 "$serve_pid" 2>/dev/null; then
            echo "FAIL: persist: $tag server died before listening"
            cat "$WORKDIR/$tag.log"
            exit 1
        fi
        sleep 0.2
    done
    if [ ! -s "$WORKDIR/$tag.port" ]; then
        echo "FAIL: persist: $tag server published no port after 20s"
        cat "$WORKDIR/$tag.log"
        exit 1
    fi
    port="$(tr -d '[:space:]' < "$WORKDIR/$tag.port")"
}

stop_serve() {
    # stop_serve <tag> — admin shutdown + clean-drain assertion
    local tag="$1"
    python3 - "$port" <<'PY'
import json, socket, sys
sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
rfile = sock.makefile("r", encoding="utf-8")
sock.sendall(b'{"id": 9, "method": "shutdown"}\n')
resp = json.loads(rfile.readline())
if resp.get("shutting_down") is not True:
    raise SystemExit(f"FAIL: persist: shutdown frame rejected: {resp}")
PY
    local status=0
    wait "$serve_pid" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "FAIL: persist: $tag server exited with status $status"
        cat "$WORKDIR/$tag.log"
        exit 1
    fi
}

# --- Donor: serve under load, snapshot on interval + frame + SIGUSR1 ---
start_serve persist_donor \
    --snapshot-out "$WORKDIR/warm.snap" --snapshot-interval-ms 200
python3 - "$port" <<'PY'
import json, socket, sys
sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
rfile = sock.makefile("r", encoding="utf-8")
# A little traffic so the snapshot carries serving history, not just the
# prime.
for i in range(8):
    sock.sendall((json.dumps({"id": i, "method": "explain", "row": i}) + "\n").encode())
    resp = json.loads(rfile.readline())
    if resp.get("ok") is not True:
        raise SystemExit(f"FAIL: persist: explain rejected: {resp}")
# On-demand snapshot over the loopback-gated admin frame.
sock.sendall(b'{"id": 50, "method": "snapshot"}\n')
resp = json.loads(rfile.readline())
if resp.get("ok") is not True or resp.get("snapshot_requested") is not True:
    raise SystemExit(f"FAIL: persist: snapshot frame rejected: {resp}")
if not resp.get("path"):
    raise SystemExit(f"FAIL: persist: snapshot ack carries no path: {resp}")
PY
kill -USR1 "$serve_pid"
for _ in $(seq 1 100); do
    [ -s "$WORKDIR/warm.snap" ] && break
    sleep 0.2
done
if [ ! -s "$WORKDIR/warm.snap" ]; then
    echo "FAIL: persist: no snapshot file after 20s"
    cat "$WORKDIR/persist_donor.log"
    exit 1
fi
stop_serve persist_donor

python3 - "$WORKDIR/persist_donor.json" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
counters, gauges = snap["counters"], snap["gauges"]
if counters.get("persist.snapshots_taken", 0) < 1:
    raise SystemExit("FAIL: persist: no snapshots taken")
# One admin frame + one SIGUSR1.
if counters.get("persist.snapshots_requested", 0) < 2:
    raise SystemExit(f"FAIL: persist: persist.snapshots_requested "
                     f"{counters.get('persist.snapshots_requested')} < 2")
if counters.get("persist.snapshots_failed", -1) != 0:
    raise SystemExit(f"FAIL: persist: persist.snapshots_failed is "
                     f"{counters.get('persist.snapshots_failed')}")
if gauges.get("persist.snapshot_bytes", 0) <= 0:
    raise SystemExit("FAIL: persist: persist.snapshot_bytes gauge not set")
print(f"OK: donor took {counters['persist.snapshots_taken']} snapshots "
      f"({counters['persist.snapshots_requested']} on demand, "
      f"{gauges['persist.snapshot_bytes']} bytes)")
PY

# --- Corrupted restart: typed rejection, cold start, still serving ----
python3 - "$WORKDIR/warm.snap" "$WORKDIR/warm.corrupt" <<'PY'
import sys
data = bytearray(open(sys.argv[1], "rb").read())
data[len(data) // 2] ^= 0x10  # one flipped bit, deep in a payload
open(sys.argv[2], "wb").write(data)
PY
start_serve persist_cold --warm-from "$WORKDIR/warm.corrupt"
if ! grep -q "warm-from snapshot rejected" "$WORKDIR/persist_cold.log"; then
    echo "FAIL: persist: corrupted snapshot was not rejected"
    cat "$WORKDIR/persist_cold.log"
    exit 1
fi
python3 - "$port" <<'PY'
import json, socket, sys
sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
rfile = sock.makefile("r", encoding="utf-8")
sock.sendall(b'{"id": 1, "method": "explain", "row": 0}\n')
resp = json.loads(rfile.readline())
if resp.get("ok") is not True:
    raise SystemExit(f"FAIL: persist: cold-started server not serving: {resp}")
PY
stop_serve persist_cold
python3 - "$WORKDIR/persist_cold.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
if counters.get("persist.load_rejected") != 1:
    raise SystemExit(f"FAIL: persist: persist.load_rejected "
                     f"{counters.get('persist.load_rejected')} != 1")
if counters.get("persist.loads_ok", -1) != 0:
    raise SystemExit(f"FAIL: persist: persist.loads_ok nonzero after a "
                     f"rejected load")
print("OK: corrupted snapshot rejected; server cold-started and served")
PY

# --- Pristine restart: warm hydration, zero classifier invocations ----
start_serve persist_warm --warm-from "$WORKDIR/warm.snap"
if ! grep -q "hydrated warm repository from snapshot" "$WORKDIR/persist_warm.log"; then
    echo "FAIL: persist: pristine snapshot did not hydrate"
    cat "$WORKDIR/persist_warm.log"
    exit 1
fi
python3 - "$port" <<'PY'
import json, socket, sys
sock = socket.create_connection(("127.0.0.1", int(sys.argv[1])), timeout=10)
rfile = sock.makefile("r", encoding="utf-8")
sock.sendall(b'{"id": 1, "method": "explain", "row": 0}\n')
resp = json.loads(rfile.readline())
if resp.get("ok") is not True:
    raise SystemExit(f"FAIL: persist: hydrated server not serving: {resp}")
PY
stop_serve persist_warm
python3 - "$WORKDIR/persist_warm.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
if counters.get("persist.loads_ok") != 1:
    raise SystemExit(f"FAIL: persist: persist.loads_ok "
                     f"{counters.get('persist.loads_ok')} != 1")
if counters.get("persist.load_rejected", -1) != 0:
    raise SystemExit(f"FAIL: persist: persist.load_rejected nonzero on a "
                     f"pristine load")
print("OK: pristine snapshot hydrated a warm replica")
PY
echo "persistence drill passed"

# Multi-tenant drill: one listener, three tenants, full lifecycle.
echo "== multi-tenant drill"
mkdir -p "$WORKDIR/snaps"
cat > "$WORKDIR/cluster.json" <<MANIFEST
{
  "default": "acme",
  "snapshot_dir": "snaps",
  "idle_evict_ms": 400,
  "tenants": [
    {"name": "acme",    "csv": "census.csv", "label": "label",
     "explainer": "lime", "seed": 5, "warm_rows": 60},
    {"name": "globex",  "csv": "census.csv", "label": "label",
     "explainer": "lime", "seed": 7, "warm_rows": 60},
    {"name": "initech", "csv": "census.csv", "label": "label",
     "explainer": "lime", "quota": 0, "warm_rows": 60}
  ]
}
MANIFEST

: > "$WORKDIR/tenancy.port"
"$CLI" serve --manifest "$WORKDIR/cluster.json" --addr 127.0.0.1:0 \
    --port-file "$WORKDIR/tenancy.port" \
    --metrics-out "$WORKDIR/tenancy.json" \
    --provenance-out "$WORKDIR/tenancy_prov.jsonl" \
    --monitor-interval-ms 100 --trace-sample 1.0 \
    >"$WORKDIR/tenancy.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$WORKDIR/tenancy.port" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "FAIL: tenancy: cluster died before listening"
        cat "$WORKDIR/tenancy.log"
        exit 1
    fi
    sleep 0.2
done
if [ ! -s "$WORKDIR/tenancy.port" ]; then
    echo "FAIL: tenancy: no port file after 20s"
    cat "$WORKDIR/tenancy.log"
    exit 1
fi
port="$(tr -d '[:space:]' < "$WORKDIR/tenancy.port")"

python3 - "$port" "$WORKDIR" <<'PY'
import json, os, socket, sys, time

port, workdir = int(sys.argv[1]), sys.argv[2]
sock = socket.create_connection(("127.0.0.1", port), timeout=30)
sock.settimeout(30)
rfile = sock.makefile("r", encoding="utf-8")

def send(obj):
    sock.sendall((json.dumps(obj) + "\n").encode())
    return json.loads(rfile.readline())

def frame(method, **kw):
    resp = send({"id": 1, "method": method, **kw})
    if resp.get("ok") is not True:
        raise SystemExit(f"FAIL: tenancy: '{method}' frame rejected: {resp}")
    return resp

def roster():
    pong = frame("ping")
    tenants = {t["name"]: t for t in pong.get("tenants", [])}
    if set(tenants) != {"acme", "globex", "initech"}:
        raise SystemExit(f"FAIL: tenancy: ping roster is {set(tenants)}")
    return pong, tenants

# --- Everything starts cold: the roster is declared, nothing is built --
pong, tenants = roster()
for name, t in tenants.items():
    for key in ("state", "entries", "bytes", "inflight"):
        if key not in t:
            raise SystemExit(f"FAIL: tenancy: ping entry for '{name}' "
                             f"lacks '{key}': {t}")
    if t["state"] != "cold" or t["entries"] != 0:
        raise SystemExit(f"FAIL: tenancy: '{name}' not cold at startup: {t}")
if pong["warm_entries"] != 0:
    raise SystemExit(f"FAIL: tenancy: warm_entries {pong['warm_entries']} "
                     f"before any request")

# --- Routing: default tenant, explicit tenant, 404, 429 ---------------
for i in range(4):
    frame("explain", row=i)                      # absent tenant -> acme
for i in range(3):
    frame("explain", row=i, tenant="globex")
over = send({"id": 20, "method": "explain", "row": 0, "tenant": "initech"})
if (over.get("ok") is not False or over.get("code") != 429
        or over.get("error") != "tenant_over_quota"
        or over.get("tenant") != "initech"):
    raise SystemExit(f"FAIL: tenancy: quota-0 tenant answered {over}")
unknown = send({"id": 21, "method": "explain", "row": 0, "tenant": "hooli"})
if (unknown.get("ok") is not False or unknown.get("code") != 404
        or unknown.get("error") != "unknown_tenant"
        or unknown.get("tenant") != "hooli"):
    raise SystemExit(f"FAIL: tenancy: unknown tenant answered {unknown}")

# --- Lazy materialization is visible in ping and the live snapshot ----
_, tenants = roster()
for name, state in (("acme", "warm"), ("globex", "warm"), ("initech", "cold")):
    if tenants[name]["state"] != state:
        raise SystemExit(f"FAIL: tenancy: '{name}' is "
                         f"{tenants[name]['state']}, wanted {state}")
if tenants["acme"]["entries"] <= 0 or tenants["acme"]["bytes"] <= 0:
    raise SystemExit(f"FAIL: tenancy: warm acme reports no footprint: "
                     f"{tenants['acme']}")

snap = frame("metrics", format="json")["snapshot"]
counters, gauges = snap["counters"], snap["gauges"]
if counters.get("tenancy.cold_starts") != 2:
    raise SystemExit(f"FAIL: tenancy: cold_starts "
                     f"{counters.get('tenancy.cold_starts')} != 2")
if counters.get("tenancy.quota_rejections") != 1:
    raise SystemExit("FAIL: tenancy: quota rejection not counted")
if counters.get("tenancy.unknown_tenant") != 1:
    raise SystemExit("FAIL: tenancy: unknown-tenant miss not counted")
if gauges.get("tenancy.tenants") != 3 or gauges.get("tenancy.warm_tenants") != 2:
    raise SystemExit(f"FAIL: tenancy: tenants gauge "
                     f"{gauges.get('tenancy.tenants')}/"
                     f"{gauges.get('tenancy.warm_tenants')} != 3/2")
lat = snap["histograms"].get("tenancy.cold_start_latency")
if lat is None or lat["count"] != 2:
    raise SystemExit(f"FAIL: tenancy: cold-start latency histogram: {lat}")
if counters.get("tenant.acme.requests") != 4:
    raise SystemExit(f"FAIL: tenancy: tenant.acme.requests "
                     f"{counters.get('tenant.acme.requests')} != 4")
if counters.get("tenant.globex.requests") != 3:
    raise SystemExit(f"FAIL: tenancy: tenant.globex.requests "
                     f"{counters.get('tenant.globex.requests')} != 3")
if counters.get("tenant.initech.quota_rejections") != 1:
    raise SystemExit("FAIL: tenancy: initech rejection not tagged")
if counters.get("tenant.initech.cold_starts") != 0:
    raise SystemExit("FAIL: tenancy: a 429 materialized initech")

# --- Live traces carry the tenant tag ---------------------------------
slowest = frame("trace", slowest=3)["traces"]
if not slowest:
    raise SystemExit("FAIL: tenancy: no traces retained at sample rate 1.0")
tagged = {t.get("tenant") for t in slowest}
if not tagged <= {"acme", "globex"} or None in tagged:
    raise SystemExit(f"FAIL: tenancy: trace tenant tags are {tagged}")

# --- Idle eviction: warm tenants retire, snapshots land on disk -------
deadline = time.time() + 60
while True:
    _, tenants = roster()
    states = {n: t["state"] for n, t in tenants.items()}
    if states["acme"] == "evicted" and states["globex"] == "evicted":
        break
    if time.time() > deadline:
        raise SystemExit(f"FAIL: tenancy: no idle eviction after 60s: {states}")
    time.sleep(0.2)
if states["initech"] != "cold":
    raise SystemExit(f"FAIL: tenancy: never-warm initech is {states['initech']}")
for name in ("acme", "globex"):
    path = os.path.join(workdir, "snaps", f"{name}.shws")
    if not os.path.getsize(path):
        raise SystemExit(f"FAIL: tenancy: no at-evict snapshot at {path}")

# --- Re-admission hydrates classifier-free ----------------------------
frame("explain", row=0, tenant="acme")
snap = frame("metrics", format="json")["snapshot"]
counters = snap["counters"]
if counters.get("tenancy.hydrations", 0) < 1:
    raise SystemExit("FAIL: tenancy: re-admission did not hydrate")
if counters.get("tenant.acme.hydrations", 0) < 1:
    raise SystemExit("FAIL: tenancy: acme hydration not tagged")
if counters.get("tenant.acme.loads_ok", 0) < 1:
    raise SystemExit("FAIL: tenancy: hydration not counted as a clean load")
if counters.get("tenant.acme.load_rejected", 0) != 0:
    raise SystemExit("FAIL: tenancy: at-evict snapshot was rejected")

print(f"OK: routed 8 requests across 2 tenants, rejected 1 over quota "
      f"and 1 unknown")
print(f"OK: idle eviction snapshotted acme+globex; re-admission hydrated "
      f"({counters['tenancy.cold_starts']} cold starts, "
      f"{counters['tenancy.evictions']} evictions)")

sock.sendall(b'{"id": 99, "method": "shutdown"}\n')
resp = json.loads(rfile.readline())
if resp.get("shutting_down") is not True:
    raise SystemExit(f"FAIL: tenancy: shutdown frame rejected: {resp}")
PY

tenancy_status=0
wait "$serve_pid" || tenancy_status=$?
if [ "$tenancy_status" -ne 0 ]; then
    echo "FAIL: tenancy: cluster exited with status $tenancy_status"
    cat "$WORKDIR/tenancy.log"
    exit 1
fi
if ! grep -q "3 tenants, default \"acme\"" "$WORKDIR/tenancy.log"; then
    echo "FAIL: tenancy: cluster banner missing from log"
    cat "$WORKDIR/tenancy.log"
    exit 1
fi

python3 - "$WORKDIR/tenancy.json" "$WORKDIR/tenancy_prov.jsonl" \
    "$WORKDIR/serve_prov.jsonl" <<'PY'
import json, sys

snap = json.load(open(sys.argv[1]))
prov = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
single_prov = [json.loads(l) for l in open(sys.argv[3]) if l.strip()]
counters, gauges = snap["counters"], snap["gauges"]

# Aggregate tenancy.* counters reconcile with the per-tenant families.
TENANTS = ("acme", "globex", "initech")
for agg, kind in (("tenancy.cold_starts", "cold_starts"),
                  ("tenancy.evictions", "evictions"),
                  ("tenancy.hydrations", "hydrations"),
                  ("tenancy.quota_rejections", "quota_rejections")):
    total = sum(counters.get(f"tenant.{t}.{kind}", 0) for t in TENANTS)
    if counters.get(agg) != total:
        raise SystemExit(f"FAIL: tenancy: {agg} {counters.get(agg)} != "
                         f"per-tenant sum {total}")
if counters.get("tenancy.cold_starts", 0) < 3:
    raise SystemExit(f"FAIL: tenancy: expected >=3 cold starts, got "
                     f"{counters.get('tenancy.cold_starts')}")
if counters.get("tenancy.evictions", 0) < 2:
    raise SystemExit(f"FAIL: tenancy: expected >=2 evictions, got "
                     f"{counters.get('tenancy.evictions')}")
if counters.get("tenant.initech.requests", -1) != 0:
    raise SystemExit("FAIL: tenancy: rejected-only initech counted requests")
# At-evict persistence went through the persist plumbing, tagged per tenant.
if counters.get("persist.snapshots_taken", 0) < 2:
    raise SystemExit(f"FAIL: tenancy: persist.snapshots_taken "
                     f"{counters.get('persist.snapshots_taken')} < 2")
for t in ("acme", "globex"):
    if counters.get(f"tenant.{t}.snapshots_taken", 0) < 1:
        raise SystemExit(f"FAIL: tenancy: no snapshot counted for '{t}'")

# Multi-tenant provenance is tenant-tagged and joinable to traces.
by_tenant = {}
for r in prov:
    if "tenant" not in r:
        raise SystemExit(f"FAIL: tenancy: untagged provenance record: {r}")
    for key in ("request", "trace_id"):
        if key not in r:
            raise SystemExit(f"FAIL: tenancy: record lacks '{key}': {r}")
    if r["samples_reused"] + r["samples_fresh"] != r["tau"]:
        raise SystemExit(f"FAIL: tenancy: reused+fresh != tau: {r}")
    by_tenant[r["tenant"]] = by_tenant.get(r["tenant"], 0) + 1
if by_tenant != {"acme": 5, "globex": 3}:
    raise SystemExit(f"FAIL: tenancy: provenance split {by_tenant} != "
                     f"acme:5 globex:3")

# Single-tenant lineage from the serve smoke stays untagged.
for r in single_prov:
    if "tenant" in r:
        raise SystemExit(f"FAIL: tenancy: single-tenant record carries "
                         f"'tenant': {r}")

print(f"OK: tenancy aggregates reconcile with per-tenant families "
      f"across {len(TENANTS)} tenants")
print(f"OK: {len(prov)} tenant-tagged provenance records "
      f"({by_tenant}), single-tenant lineage untagged")
print("multi-tenant drill passed")
PY
