#!/usr/bin/env bash
# Smoke-checks the observability pipeline end to end: runs a small
# explanation batch through shahin-cli with --metrics-out and validates
# that the JSON dump carries every metric family the instrumentation
# promises (store hits/misses, per-shard Anchor cache counters, per-phase
# span durations, classifier latency histogram buckets).
#
# Knobs (all optional):
#   SHAHIN_CHECK_ROWS   synthetic dataset rows   (default 2000)
#   SHAHIN_CHECK_BATCH  tuples to explain        (default 60)
set -euo pipefail
cd "$(dirname "$0")/.."

ROWS="${SHAHIN_CHECK_ROWS:-2000}"
BATCH="${SHAHIN_CHECK_BATCH:-60}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cargo build --release --bin shahin-cli
CLI=target/release/shahin-cli

"$CLI" synth --preset census --rows "$ROWS" --out "$WORKDIR/census.csv"

# LIME exercises the perturbation store + fim/materialize/retrieve/surrogate
# spans and the classifier histogram; Anchor exercises the sharded caches.
"$CLI" explain --csv "$WORKDIR/census.csv" --label label --explainer lime \
    --method batch --batch-size "$BATCH" --metrics-out "$WORKDIR/lime.json"
"$CLI" explain --csv "$WORKDIR/census.csv" --label label --explainer anchor \
    --method batch --batch-size "$BATCH" --metrics-out "$WORKDIR/anchor.json"

python3 - "$WORKDIR/lime.json" "$WORKDIR/anchor.json" <<'PY'
import json, sys

def require(snap, path, kind, where):
    section = snap[kind]
    if path not in section:
        raise SystemExit(f"FAIL: {where}: missing {kind[:-1]} '{path}'")
    return section[path]

lime = json.load(open(sys.argv[1]))
anchor = json.load(open(sys.argv[2]))

for snap, where in ((lime, "lime"), (anchor, "anchor")):
    for section in ("counters", "gauges", "histograms"):
        if section not in snap:
            raise SystemExit(f"FAIL: {where}: no '{section}' section")
    # Perturbation store traffic and footprint.
    for c in ("store.lookups", "store.hits", "store.misses", "store.samples_reused"):
        require(snap, c, "counters", where)
    if require(snap, "store.peak_bytes", "gauges", where) <= 0:
        raise SystemExit(f"FAIL: {where}: store.peak_bytes is zero")
    # Per-phase wall time: preparation spans must have fired exactly once,
    # retrieval once per tuple.
    for span in ("span.fim.mine", "span.materialize.fill", "span.retrieve.match"):
        h = require(snap, span, "histograms", where)
        if h["count"] == 0 or h["sum_ns"] == 0:
            raise SystemExit(f"FAIL: {where}: span '{span}' recorded nothing")
        if sum(b["count"] for b in h["buckets"]) != h["count"]:
            raise SystemExit(f"FAIL: {where}: '{span}' bucket counts != count")
    # Classifier invocation latency histogram with populated buckets.
    clf = require(snap, "classifier.predict", "histograms", where)
    if clf["count"] == 0 or not clf["buckets"]:
        raise SystemExit(f"FAIL: {where}: classifier.predict histogram empty")

# Explainer-specific families.
require(lime, "span.surrogate.fit", "histograms", "lime")
shard_hits = sum(
    v for k, v in anchor["counters"].items()
    if k.startswith("anchor.shard") and k.endswith(".hits")
)
shard_misses = sum(
    v for k, v in anchor["counters"].items()
    if k.startswith("anchor.shard") and k.endswith(".misses")
)
if "anchor.shard00.hits" not in anchor["counters"]:
    raise SystemExit("FAIL: anchor: per-shard counters not registered")
if shard_hits + shard_misses == 0:
    raise SystemExit("FAIL: anchor: shard caches saw no traffic")
require(anchor, "span.anchor.search", "histograms", "anchor")

print(f"OK: lime dump has {len(lime['counters'])} counters, "
      f"{len(lime['histograms'])} histograms")
print(f"OK: anchor shard caches: {shard_hits} hits / {shard_misses} misses")
print("metrics dump schema check passed")
PY
