//! Umbrella crate for the Shahin reproduction: re-exports every subcrate.
//!
//! See the README for the repository layout; the interesting entry points
//! are [`shahin::ShahinBatch`], [`shahin::ShahinStreaming`], and the
//! experiment binaries in `crates/bench`.

pub use shahin;
pub use shahin_explain;
pub use shahin_fim;
pub use shahin_linalg;
pub use shahin_model;
pub use shahin_tabular;
