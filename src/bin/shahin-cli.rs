//! Command-line interface for the Shahin reproduction.
//!
//! ```text
//! shahin-cli synth   --preset census --rows 5000 --out data.csv
//! shahin-cli mine    --csv data.csv --label label --min-support 0.2
//! shahin-cli explain --csv data.csv --label label --explainer lime \
//!                    --method batch --batch-size 500 --summary
//! shahin-cli serve   --csv data.csv --label label --warm-rows 200 \
//!                    --addr 127.0.0.1:7878
//! ```
//!
//! Arguments are parsed by hand (no CLI dependency); run with `--help` for
//! the full reference.

use std::collections::HashMap;
use std::fs::File;
use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::SeedableRng;

use shahin::{
    run_with_obs, summarize_attributions, summarize_rules, BatchConfig, ExplainerKind, Greedy,
    Method, MetricsRegistry,
};
use shahin_explain::{AnchorExplainer, ExplainContext, KernelShapExplainer, LimeExplainer};
use shahin_fim::{apriori, shahin_sample_size, AprioriParams};
use shahin_model::{
    ChaosClassifier, ChaosConfig, Classifier, CountingClassifier, ForestParams, RandomForest,
    ResilientClassifier, RetryPolicy, TracedClassifier,
};
use shahin_tabular::{read_csv, train_test_split, Dataset, DatasetPreset, Discretizer};

const HELP: &str = "\
shahin-cli — batch explanation generation (SIGMOD'21 'Shahin' reproduction)

USAGE:
  shahin-cli synth   --preset <name> [--rows N] [--seed S] --out <file.csv>
  shahin-cli mine    --csv <file> [--label COL] [--min-support F] [--max-len K]
  shahin-cli explain --csv <file> --label COL [--explainer lime|anchor|shap]
                     [--method sequential|batch|par[-K]|streaming|greedy|dist-K]
                     [--batch-size N] [--seed S] [--summary] [--top K]
                     [--metrics] [--metrics-out <file.json>]
                     [--trace-out <file.json>] [--provenance-out <file.jsonl>]
                     [--max-retries N] [--call-timeout-ms MS]
                     [--chaos] [--chaos-transient F] [--chaos-nan F]
                     [--chaos-panic F] [--chaos-seed S]
  shahin-cli serve   --csv <file> --label COL [--explainer lime|anchor|shap]
                     [--addr HOST:PORT] [--warm-rows N] [--seed S]
                     [--max-batch N] [--max-delay-ms MS] [--queue-capacity N]
                     [--threads K] [--refresh-every N] [--port-file <file>]
                     [--write-timeout-ms MS] [--allow-remote-shutdown]
                     [--monitor-interval-ms MS] [--windows N]
                     [--slo-p99-ms MS] [--slo-error-rate F]
                     [--trace-sample F] [--trace-slow-ms MS] [--trace-store N]
                     [--snapshot-out <file>] [--snapshot-interval-ms MS]
                     [--warm-from <file>]
                     [--metrics] [--metrics-out <file.json>]
                     [--provenance-out <file.jsonl>]
                     [resilience/chaos flags as for explain]
  shahin-cli serve   --manifest <cluster.json> [serve tuning flags as above,
                     minus --csv/--label/--warm-from/--snapshot-out]

PRESETS: census, recidivism, lendingclub, kddcup99, covertype

SERVING:
  `serve` primes a warm perturbation repository over the first
  --warm-rows test tuples, then listens for newline-delimited JSON
  explain requests (one object per line):
      {\"id\": 1, \"method\": \"explain\", \"row\": 17}
      {\"id\": 2, \"method\": \"explain\", \"row\": 3, \"deadline_ms\": 250}
      {\"id\": 3, \"method\": \"ping\"}      {\"id\": 4, \"method\": \"shutdown\"}
      {\"id\": 5, \"method\": \"metrics\" [, \"format\": \"json\"]}
      {\"id\": 6, \"method\": \"stats\"}
  Concurrent requests are coalesced into micro-batches (flush at
  --max-batch requests or after --max-delay-ms) that share the warm
  store and Anchor caches. A full admission queue answers 429-style
  frames; malformed frames get 400-style frames and keep the
  connection open. SIGINT/SIGTERM or an admin shutdown frame drains
  the queue — every admitted request is answered — then exits. The
  shutdown frame is accepted from loopback peers only unless
  --allow-remote-shutdown is passed; clients that stop reading are
  disconnected after --write-timeout-ms per response frame.
  --addr with port 0 picks an ephemeral port; --port-file writes the
  bound port for scripts. --refresh-every N rebuilds the warm store
  every N micro-batches (0 = never).

  A monitor thread samples queue depth, live connections, and warm-store
  size every --monitor-interval-ms (default 1000) and keeps the last
  --windows (default 12) windows of metric deltas; the windowed view
  backs the `stats` admin frame (req/s, windowed p50/p99, hit rate, SLO
  burn) and the slo.* gauges. --slo-p99-ms (default 500) and
  --slo-error-rate (default 0.001) set the latency and error-budget
  objectives. The `metrics` admin frame returns a Prometheus text
  exposition (or the JSON snapshot with \"format\": \"json\"); like
  `shutdown`, `metrics` and `stats` are loopback-only unless
  --allow-remote-shutdown. With --metrics-out the monitor also rewrites
  the snapshot file atomically every tick, so it can be tailed while
  serving.

  Every admitted request gets a trace id (returned in its response
  frame) and a span tree (queue/batch/retrieve/classify/explain with
  per-stage counters). A bounded store tail-samples which traces to
  retain: every error/quarantined request, the slowest K per monitor
  window, plus a --trace-sample (default 0.01) fraction of the rest,
  in a --trace-store ring (default 512 traces; 0 disables tracing).
  --trace-slow-ms (default 100) marks a request slow enough to always
  retain. The loopback-gated `trace` admin frame fetches them back:
      {\"id\": 7, \"method\": \"trace\", \"trace_id\": 42}
      {\"id\": 8, \"method\": \"trace\", \"trace_id\": 42, \"format\": \"chrome\"}
      {\"id\": 9, \"method\": \"trace\", \"slowest\": 5}
      {\"id\": 10, \"method\": \"trace\", \"errors\": true}
  \"chrome\" returns a single-request Chrome-trace JSON document
  (load in Perfetto); latency histogram buckets remember the last
  trace id that landed in them (exemplars, in `metrics` output).

MULTI-TENANT:
  --manifest FILE serves N tenants from one listener. The JSON manifest
  declares each tenant's dataset, explainer, and knobs, plus cluster
  policy:
      {\"default\": \"acme\", \"snapshot_dir\": \"snaps\",
       \"memory_budget_bytes\": 268435456, \"idle_evict_ms\": 600000,
       \"tenants\": [
         {\"name\": \"acme\",   \"csv\": \"acme.csv\",   \"label\": \"y\",
          \"explainer\": \"lime\"},
         {\"name\": \"globex\", \"csv\": \"globex.csv\", \"label\": \"y\",
          \"explainer\": \"shap\", \"quota\": 64, \"threads\": 4}]}
  Explain requests route by a \"tenant\" field (absent → the default
  tenant, unknown → a 404 frame). Each tenant's warm repository is
  materialized lazily on its first request — a counted, traced cold
  start that hydrates classifier-free from <snapshot_dir>/<name>.shws
  when present (or a tenant's \"warm_from\" snapshot, first start only).
  Warm tenants above the memory budget or idle past idle_evict_ms are
  evicted LRU-first, each writing a final at-evict snapshot so
  re-admission is classifier-free and bit-identical. \"quota\" bounds a
  tenant's in-flight requests (over → a 429 frame naming the tenant;
  0 rejects everything). Datasets and models are built eagerly at
  startup (misconfigurations fail before the listener binds), and
  unreadable snapshots are startup errors. `ping` and `stats` frames
  carry per-tenant lifecycle rows; metrics gain tenancy.* counters and
  tenant.<name>.* breakdowns.

PERSISTENCE:
  --snapshot-out FILE writes checksummed warm-state snapshots (the
  perturbation store, Anchor caches, and SHAP base value) atomically:
  every --snapshot-interval-ms if set, on the loopback-gated admin
  frame {\"method\": \"snapshot\"} or a SIGUSR1, and once at drain.
  --warm-from FILE hydrates the repository from such a snapshot at
  startup instead of re-materializing — zero classifier invocations,
  bit-identical explanations to the donor. The file is fully validated
  (magic, format version, config fingerprint, per-section CRCs); any
  corruption is rejected with a typed error, counted under
  persist.load_rejected, and the server cold-starts instead. An
  unreadable --warm-from path is a hard startup error (before binding).

OBSERVABILITY:
  --metrics              print the metrics table (spans, counters, histograms)
  --metrics-out FILE     write the full metrics snapshot as JSON
  --trace-out FILE       write a Chrome trace-event timeline (load in Perfetto
                         or chrome://tracing) of every instrumented phase
  --provenance-out FILE  write one JSON line per explained tuple: matched
                         itemsets, samples reused/fresh, invocations, timing

RESILIENCE:
  --max-retries N        retry budget per classifier call (default 3; putting
                         this or --call-timeout-ms on the command line wraps
                         the model in the resilient boundary)
  --call-timeout-ms MS   per-call deadline; slower calls count as timeouts
  --chaos                inject faults from a seeded schedule (5% transient
                         errors, 1% NaN outputs by default) to exercise the
                         retry/quarantine machinery end to end
  --chaos-transient F    transient-error rate in [0,1]
  --chaos-nan F          NaN-output rate in [0,1]
  --chaos-panic F        panic rate in [0,1] (quarantines the tuple)
  --chaos-seed S         fault-schedule seed (default 0xC4A05EED)

Tuples whose classifier calls exhaust the retry budget are quarantined, the
rest of the batch completes; the exit code is 2 when any tuple failed.
Output files are created along with any missing parent directories.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{HELP}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got '{}'", args[i]))?;
        if key == "summary"
            || key == "help"
            || key == "metrics"
            || key == "chaos"
            || key == "allow-remote-shutdown"
        {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
        } else {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_string(), value.clone());
            i += 2;
        }
    }
    Ok(flags)
}

fn get<'a>(flags: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    flags
        .get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required --{key}"))
}

fn get_or<'a>(flags: &'a HashMap<String, String>, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: '{s}'"))
}

/// Creates `path`'s parent directories if missing, with an error naming
/// the directory, the output it was for, and the underlying cause.
fn ensure_parent_dir(path: &str, what: &str) -> Result<(), String> {
    let p = std::path::Path::new(path);
    if let Some(parent) = p.parent() {
        if !parent.as_os_str().is_empty() && !parent.exists() {
            std::fs::create_dir_all(parent).map_err(|e| {
                format!(
                    "cannot create directory '{}' for the {what} output: {e}",
                    parent.display()
                )
            })?;
        }
    }
    Ok(())
}

/// Writes `contents` to `path` atomically (temp file + fsync + rename,
/// via the shared [`shahin_serve::write_atomic`] idiom), creating any
/// missing parent directories. Errors name the file, the failing
/// operation, and the underlying cause instead of surfacing a bare
/// `io::Error`.
fn write_output(path: &str, contents: &str, what: &str) -> Result<(), String> {
    ensure_parent_dir(path, what)?;
    shahin_serve::write_atomic(std::path::Path::new(path), contents)
        .map_err(|e| format!("cannot write {what} output '{path}': {e}"))
}

fn run_cli(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err("no subcommand".into());
    };
    if cmd == "--help" || cmd == "help" {
        println!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    let flags = parse_flags(&args[1..])?;
    if flags.contains_key("help") {
        println!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    match cmd.as_str() {
        "synth" => cmd_synth(&flags).map(|()| ExitCode::SUCCESS),
        "mine" => cmd_mine(&flags).map(|()| ExitCode::SUCCESS),
        "explain" => cmd_explain(&flags),
        "serve" => cmd_serve(&flags),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn preset_by_name(name: &str) -> Result<DatasetPreset, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "census" | "census-income" => DatasetPreset::CensusIncome,
        "recidivism" => DatasetPreset::Recidivism,
        "lendingclub" | "lending-club" => DatasetPreset::LendingClub,
        "kddcup99" | "kdd" => DatasetPreset::KddCup99,
        "covertype" => DatasetPreset::Covertype,
        other => return Err(format!("unknown preset '{other}'")),
    })
}

fn cmd_synth(flags: &HashMap<String, String>) -> Result<(), String> {
    let preset = preset_by_name(get(flags, "preset")?)?;
    let seed: u64 = parse_num(get_or(flags, "seed", "42"), "seed")?;
    let out_path = get(flags, "out")?;
    let mut spec = preset.spec(1.0);
    if let Some(rows) = flags.get("rows") {
        spec.n_rows = parse_num(rows, "rows")?;
    }
    let (data, labels) = spec.generate(seed);
    // Synthetic categorical codes have no string dictionary: emit codes.
    let dictionaries = vec![Vec::new(); data.n_attrs()];
    ensure_parent_dir(out_path, "synth")?;
    let mut out = File::create(out_path)
        .map_err(|e| format!("cannot write synth output '{out_path}': {e}"))?;
    shahin_tabular::write_csv(&mut out, &data, &dictionaries, Some(("label", &labels)))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} rows x {} attributes ({}) to {out_path}",
        data.n_rows(),
        data.n_attrs(),
        preset.name()
    );
    Ok(())
}

fn cmd_mine(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = get(flags, "csv")?;
    let min_support: f64 = parse_num(get_or(flags, "min-support", "0.2"), "min-support")?;
    let max_len: usize = parse_num(get_or(flags, "max-len", "3"), "max-len")?;
    let file = File::open(path).map_err(|e| e.to_string())?;
    let csv = read_csv(file, flags.get("label").map(String::as_str)).map_err(|e| e.to_string())?;
    let disc = Discretizer::fit(&csv.data);
    let table = disc.encode_dataset(&csv.data);
    let mined = apriori(
        &table,
        &AprioriParams {
            min_support,
            max_len,
            max_itemsets: 100,
        },
    );
    println!(
        "mined {} rows (sample rule would use {}): {} frequent itemsets, {} on the negative border",
        table.n_rows(),
        shahin_sample_size(table.n_rows()),
        mined.frequent.len(),
        mined.negative_border.len()
    );
    for (i, (set, count)) in mined.frequent.iter().take(25).enumerate() {
        let pretty: Vec<String> = set
            .items()
            .iter()
            .map(|it| {
                let attr = it.attr as usize;
                let name = &csv.data.schema().attr(attr).name;
                match csv.dictionaries[attr].get(it.code as usize) {
                    Some(v) if !v.is_empty() => format!("{name}={v}"),
                    _ => format!("{name}#bin{}", it.code),
                }
            })
            .collect();
        println!(
            "{:>3}. {{{}}}  support {:.1}%",
            i + 1,
            pretty.join(", "),
            100.0 * *count as f64 / table.n_rows() as f64
        );
    }
    Ok(())
}

fn cmd_explain(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    let path = get(flags, "csv")?;
    let label = get(flags, "label")?;
    let seed: u64 = parse_num(get_or(flags, "seed", "42"), "seed")?;
    let batch_size: usize = parse_num(get_or(flags, "batch-size", "200"), "batch-size")?;
    let top: usize = parse_num(get_or(flags, "top", "10"), "top")?;

    let file = File::open(path).map_err(|e| e.to_string())?;
    let csv = read_csv(file, Some(label)).map_err(|e| e.to_string())?;
    let labels = csv
        .labels
        .ok_or_else(|| format!("label column '{label}' produced no labels"))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = train_test_split(&csv.data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );
    // An enabled registry only when metrics were asked for: the traced
    // wrapper skips its timestamping entirely against a disabled one.
    let want_metrics = flags.contains_key("metrics") || flags.contains_key("metrics-out");
    let want_trace = flags.contains_key("trace-out");
    let want_provenance = flags.contains_key("provenance-out");
    let obs = if want_metrics || want_trace || want_provenance {
        MetricsRegistry::new()
    } else {
        MetricsRegistry::disabled()
    };
    let event_sink = want_trace.then(|| std::sync::Arc::new(shahin::EventSink::new()));
    if let Some(sink) = &event_sink {
        obs.attach_event_sink(std::sync::Arc::clone(sink));
    }
    let provenance_sink =
        want_provenance.then(|| std::sync::Arc::new(shahin::ProvenanceSink::new()));
    if let Some(sink) = &provenance_sink {
        obs.attach_provenance_sink(std::sync::Arc::clone(sink));
    }
    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
    let n = batch_size.min(split.test.n_rows());
    let batch = split.test.select(&(0..n).collect::<Vec<_>>());

    let kind = match get_or(flags, "explainer", "lime") {
        "lime" => ExplainerKind::Lime(LimeExplainer::default()),
        "anchor" => ExplainerKind::Anchor(AnchorExplainer::default()),
        "shap" => ExplainerKind::Shap(KernelShapExplainer::default()),
        other => return Err(format!("unknown explainer '{other}'")),
    };
    let method_name = get_or(flags, "method", "batch");
    let method = match method_name {
        "sequential" => Method::Sequential,
        "batch" => Method::Batch(Default::default()),
        // All available cores; "par-K" pins the worker thread count.
        "par" => Method::BatchParallel(Default::default()),
        "streaming" => Method::Streaming(Default::default()),
        "greedy" => Method::Greedy(Greedy::default_budget(&batch)),
        other => match other.strip_prefix("dist-") {
            Some(k) => Method::Dist(parse_num(k, "dist worker count")?),
            None => match other.strip_prefix("par-") {
                Some(k) => Method::BatchParallel(BatchConfig {
                    n_threads: Some(parse_num(k, "worker thread count")?),
                    ..Default::default()
                }),
                None => return Err(format!("unknown method '{other}'")),
            },
        },
    };

    // Resilience boundary: retry-policy flags wrap the model in the
    // resilient classifier; chaos flags additionally inject faults between
    // the model and that boundary. The stacks have different types, so the
    // generic tail runs the batch for whichever stack was assembled.
    let mut policy = RetryPolicy::default();
    let mut want_resilient = false;
    if let Some(v) = flags.get("max-retries") {
        policy.max_retries = parse_num(v, "max-retries")?;
        want_resilient = true;
    }
    if let Some(v) = flags.get("call-timeout-ms") {
        let ms: u64 = parse_num(v, "call-timeout-ms")?;
        policy.call_timeout = Some(std::time::Duration::from_millis(ms));
        want_resilient = true;
    }
    let want_chaos = ["chaos", "chaos-transient", "chaos-nan", "chaos-panic"]
        .iter()
        .any(|k| flags.contains_key(*k));

    println!(
        "explaining {n} predictions with {} / {method_name} ...",
        kind.name()
    );
    if want_chaos {
        let mut cfg = ChaosConfig::default();
        if let Some(v) = flags.get("chaos-transient") {
            cfg.transient_rate = parse_num(v, "chaos-transient")?;
        }
        if let Some(v) = flags.get("chaos-nan") {
            cfg.nan_rate = parse_num(v, "chaos-nan")?;
        }
        if let Some(v) = flags.get("chaos-panic") {
            cfg.panic_rate = parse_num(v, "chaos-panic")?;
        }
        if let Some(v) = flags.get("chaos-seed") {
            cfg.seed = parse_num(v, "chaos-seed")?;
        }
        println!(
            "chaos: transient {:.1}%, nan {:.1}%, panic {:.1}%, seed {:#x}",
            100.0 * cfg.transient_rate,
            100.0 * cfg.nan_rate,
            100.0 * cfg.panic_rate,
            cfg.seed
        );
        let chaos = ChaosClassifier::new(TracedClassifier::new(forest, &obs), cfg);
        let clf = CountingClassifier::new(ResilientClassifier::new(chaos, policy).with_obs(&obs));
        explain_tail(
            flags,
            &obs,
            &event_sink,
            &provenance_sink,
            &ctx,
            &clf,
            &batch,
            &method,
            &kind,
            seed,
            top,
        )
    } else if want_resilient {
        let resilient =
            ResilientClassifier::new(TracedClassifier::new(forest, &obs), policy).with_obs(&obs);
        let clf = CountingClassifier::new(resilient);
        explain_tail(
            flags,
            &obs,
            &event_sink,
            &provenance_sink,
            &ctx,
            &clf,
            &batch,
            &method,
            &kind,
            seed,
            top,
        )
    } else {
        let clf = CountingClassifier::new(TracedClassifier::new(forest, &obs));
        explain_tail(
            flags,
            &obs,
            &event_sink,
            &provenance_sink,
            &ctx,
            &clf,
            &batch,
            &method,
            &kind,
            seed,
            top,
        )
    }
}

/// Runs the batch with the assembled classifier stack, writes the
/// requested outputs, and maps quarantined tuples to exit code 2.
#[allow(clippy::too_many_arguments)]
fn explain_tail<C: Classifier>(
    flags: &HashMap<String, String>,
    obs: &MetricsRegistry,
    event_sink: &Option<std::sync::Arc<shahin::EventSink>>,
    provenance_sink: &Option<std::sync::Arc<shahin::ProvenanceSink>>,
    ctx: &ExplainContext,
    clf: &CountingClassifier<C>,
    batch: &Dataset,
    method: &Method,
    kind: &ExplainerKind,
    seed: u64,
    top: usize,
) -> Result<ExitCode, String> {
    let want_metrics = flags.contains_key("metrics") || flags.contains_key("metrics-out");
    let report = run_with_obs(method, kind, ctx, clf, batch, seed, obs);
    println!(
        "done: {} classifier invocations ({:.1} per tuple), {:.2}s wall",
        report.metrics.invocations,
        report.metrics.invocations_per_tuple(),
        report.metrics.wall.as_secs_f64()
    );
    println!("batch report: {}\n", report.report.summary());
    for f in &report.report.failures {
        eprintln!(
            "  tuple {} failed ({}): {}",
            f.row,
            f.kind.name(),
            f.message
        );
    }

    if want_metrics {
        let snapshot = obs.snapshot();
        if flags.contains_key("metrics") {
            print!("{}", snapshot.render_table());
        }
        if let Some(out_path) = flags.get("metrics-out") {
            write_output(out_path, &snapshot.to_json(), "metrics")?;
            println!("metrics written to {out_path}");
        }
    }
    if let (Some(sink), Some(out_path)) = (&event_sink, flags.get("trace-out")) {
        write_output(out_path, &sink.to_chrome_trace(), "trace")?;
        println!(
            "trace written to {out_path} ({} events{}) — open in Perfetto or chrome://tracing",
            sink.len(),
            match sink.dropped() {
                0 => String::new(),
                d => format!(", {d} dropped"),
            }
        );
    }
    if let (Some(sink), Some(out_path)) = (&provenance_sink, flags.get("provenance-out")) {
        write_output(out_path, &sink.to_jsonl(), "provenance")?;
        println!(
            "provenance written to {out_path} ({} records{})",
            sink.len(),
            match sink.dropped() {
                0 => String::new(),
                d => format!(", {d} dropped"),
            }
        );
    }

    if flags.contains_key("summary") {
        if report.explanations.is_empty() {
            println!("no surviving explanations to summarize");
            return Ok(ExitCode::from(2));
        }
        match &kind {
            ExplainerKind::Anchor(_) => {
                let rules: Vec<_> = report
                    .explanations
                    .iter()
                    .map(|e| e.rule().expect("anchor output").clone())
                    .collect();
                let summary = summarize_rules(&rules);
                print!("{}", summary.report(batch.schema(), top));
            }
            _ => {
                let weights: Vec<_> = report
                    .explanations
                    .iter()
                    .map(|e| e.weights().expect("attribution output").clone())
                    .collect();
                let summary = summarize_attributions(&weights);
                print!("{}", summary.report(batch.schema(), top));
            }
        }
    } else {
        // Print the first surviving explanation as a sample.
        match report.explanations.first() {
            Some(shahin::Explanation::Weights(w)) => {
                println!("tuple 0 — top attributions:");
                for &a in w.top_k(top.min(5)).iter() {
                    println!("  {:<20} {:+.4}", batch.schema().attr(a).name, w.weights[a]);
                }
            }
            Some(shahin::Explanation::Rule(r)) => {
                println!(
                    "tuple 0 — anchor: {} (precision {:.2}, coverage {:.2})",
                    r.rule, r.precision, r.coverage
                );
            }
            None => println!("no tuple survived to sample an explanation from"),
        }
    }
    Ok(if report.report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    })
}

/// Parses the serve tuning flags shared by the single-tenant and
/// `--manifest` paths into a [`shahin_serve::ServeConfig`].
/// `snapshot_out` is the single-tenant snapshot file (always `None`
/// under a manifest, where persistence is per-tenant); `persists` says
/// whether *any* snapshot target is configured, gating
/// `--snapshot-interval-ms`.
fn build_serve_config(
    flags: &HashMap<String, String>,
    snapshot_out: Option<std::path::PathBuf>,
    persists: bool,
) -> Result<shahin_serve::ServeConfig, String> {
    use std::time::Duration;

    let addr = get_or(flags, "addr", "127.0.0.1:0");
    let max_batch: usize = parse_num(get_or(flags, "max-batch", "32"), "max-batch")?;
    let max_delay_ms: u64 = parse_num(get_or(flags, "max-delay-ms", "5"), "max-delay-ms")?;
    let queue_capacity: usize =
        parse_num(get_or(flags, "queue-capacity", "1024"), "queue-capacity")?;
    let refresh_every: u64 = parse_num(get_or(flags, "refresh-every", "0"), "refresh-every")?;
    let write_timeout_ms: u64 = parse_num(
        get_or(flags, "write-timeout-ms", "1000"),
        "write-timeout-ms",
    )?;
    let monitor_interval_ms: u64 = parse_num(
        get_or(flags, "monitor-interval-ms", "1000"),
        "monitor-interval-ms",
    )?;
    if monitor_interval_ms == 0 {
        return Err("monitor-interval-ms must be positive".into());
    }
    let windows: usize = parse_num(get_or(flags, "windows", "12"), "windows")?;
    let slo_p99_ms: u64 = parse_num(get_or(flags, "slo-p99-ms", "500"), "slo-p99-ms")?;
    let slo_error_rate: f64 =
        parse_num(get_or(flags, "slo-error-rate", "0.001"), "slo-error-rate")?;
    if !(0.0..=1.0).contains(&slo_error_rate) {
        return Err("slo-error-rate must be in [0, 1]".into());
    }
    let trace_sample: f64 = parse_num(get_or(flags, "trace-sample", "0.01"), "trace-sample")?;
    if !(0.0..=1.0).contains(&trace_sample) {
        return Err("trace-sample must be in [0, 1]".into());
    }
    let trace_slow_ms: u64 = parse_num(get_or(flags, "trace-slow-ms", "100"), "trace-slow-ms")?;
    let trace_store: usize = parse_num(get_or(flags, "trace-store", "512"), "trace-store")?;
    let snapshot_interval_ms: Option<u64> = match flags.get("snapshot-interval-ms") {
        None => None,
        Some(v) => Some(parse_num(v, "snapshot-interval-ms")?),
    };
    if snapshot_interval_ms == Some(0) {
        return Err("snapshot-interval-ms must be positive".into());
    }
    if snapshot_interval_ms.is_some() && !persists {
        return Err(
            "--snapshot-interval-ms needs a snapshot target (--snapshot-out, or a manifest with snapshot_dir)"
                .into(),
        );
    }
    Ok(shahin_serve::ServeConfig {
        addr: addr.to_string(),
        queue_capacity,
        max_batch,
        max_delay: Duration::from_millis(max_delay_ms),
        refresh_every,
        write_timeout: Duration::from_millis(write_timeout_ms),
        allow_remote_shutdown: flags.contains_key("allow-remote-shutdown"),
        watch_signals: true,
        monitor_interval: Duration::from_millis(monitor_interval_ms),
        windows,
        slo_p99: Duration::from_millis(slo_p99_ms),
        slo_error_rate,
        trace_sample,
        trace_slow: Duration::from_millis(trace_slow_ms),
        trace_store,
        // The monitor rewrites the file atomically every tick; the final
        // post-drain write adds the folded provenance gauges.
        metrics_out: flags.get("metrics-out").map(std::path::PathBuf::from),
        snapshot_out,
        snapshot_interval: snapshot_interval_ms.map(Duration::from_millis),
        ..Default::default()
    })
}

/// Blocks until the server drains, then writes the requested post-drain
/// outputs (metrics, provenance) and reports the served total — the
/// tail both serve paths share.
fn serve_tail<C: Classifier + 'static>(
    flags: &HashMap<String, String>,
    obs: &MetricsRegistry,
    provenance_sink: &Option<std::sync::Arc<shahin::ProvenanceSink>>,
    handle: shahin_serve::ServerHandle<C>,
) -> Result<ExitCode, String> {
    use shahin::fold_provenance;

    let served = handle.wait();
    if let Some(out_path) = flags.get("metrics-out") {
        fold_provenance(obs);
        // Atomic like the monitor's periodic rewrites: a reader tailing
        // the file must never observe a torn document, including the
        // final post-drain write.
        shahin_serve::write_atomic(std::path::Path::new(out_path), &obs.snapshot().to_json())
            .map_err(|e| format!("cannot write metrics to '{out_path}': {e}"))?;
        println!("metrics written to {out_path}");
    }
    if flags.contains_key("metrics") {
        fold_provenance(obs);
        print!("{}", obs.snapshot().render_table());
    }
    if let (Some(sink), Some(out_path)) = (provenance_sink, flags.get("provenance-out")) {
        write_output(out_path, &sink.to_jsonl(), "provenance")?;
        println!(
            "provenance written to {out_path} ({} records{})",
            sink.len(),
            match sink.dropped() {
                0 => String::new(),
                d => format!(", {d} dropped"),
            }
        );
    }
    println!("drained cleanly ({served} requests served)");
    Ok(ExitCode::SUCCESS)
}

/// Starts the online explanation service over a warm repository primed
/// from the CSV's test split, and blocks until a graceful drain. With
/// `--manifest`, serves a whole tenant cluster instead.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    use shahin::{WarmEngine, WarmExplainer};
    use shahin_serve::Server;
    use std::sync::Arc;
    use std::time::Duration;

    if flags.contains_key("manifest") {
        for conflict in ["csv", "label", "warm-from", "snapshot-out"] {
            if flags.contains_key(conflict) {
                return Err(format!(
                    "--manifest declares tenants itself; drop --{conflict} \
                     (per-tenant datasets and snapshots come from the manifest)"
                ));
            }
        }
        return cmd_serve_manifest(flags);
    }

    let path = get(flags, "csv")?;
    let label = get(flags, "label")?;
    let seed: u64 = parse_num(get_or(flags, "seed", "42"), "seed")?;
    let warm_rows: usize = parse_num(get_or(flags, "warm-rows", "200"), "warm-rows")?;
    let snapshot_out = flags.get("snapshot-out").map(std::path::PathBuf::from);
    let serve_config = build_serve_config(flags, snapshot_out.clone(), snapshot_out.is_some())?;
    // Fail fast on an unreadable --warm-from: a misconfigured path is an
    // operator error, caught before the expensive forest fit and before
    // the listener binds. (A *corrupt-but-readable* snapshot instead
    // degrades to a cold start below — the file's contents are data,
    // the file's existence is configuration.)
    let warm_from_bytes: Option<Vec<u8>> = match flags.get("warm-from") {
        None => None,
        Some(p) => Some(
            std::fs::read(p)
                .map_err(|e| format!("cannot read --warm-from snapshot '{p}': {e}"))?,
        ),
    };

    let file = File::open(path).map_err(|e| e.to_string())?;
    let csv = read_csv(file, Some(label)).map_err(|e| e.to_string())?;
    let labels = csv
        .labels
        .ok_or_else(|| format!("label column '{label}' produced no labels"))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let split = train_test_split(&csv.data, &labels, 1.0 / 3.0, &mut rng);
    let forest = RandomForest::fit(
        &split.train,
        &split.train_labels,
        &ForestParams::default(),
        &mut rng,
    );

    // A server always records: the smoke harness and load generator read
    // serve.* metrics back, and the cost is a few relaxed atomics.
    let obs = MetricsRegistry::new();
    let provenance_sink = flags
        .contains_key("provenance-out")
        .then(|| Arc::new(shahin::ProvenanceSink::new()));
    if let Some(sink) = &provenance_sink {
        obs.attach_provenance_sink(Arc::clone(sink));
    }

    let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
    let n = warm_rows.min(split.test.n_rows());
    let warm = split.test.select(&(0..n).collect::<Vec<_>>());

    let explainer = match get_or(flags, "explainer", "lime") {
        "lime" => WarmExplainer::Lime(LimeExplainer::default()),
        "anchor" => WarmExplainer::Anchor(AnchorExplainer::default()),
        "shap" => WarmExplainer::Shap(KernelShapExplainer::default()),
        other => return Err(format!("unknown explainer '{other}'")),
    };

    // The same resilience/chaos stack as `explain`, type-erased so one
    // engine type serves every combination.
    let mut policy = RetryPolicy::default();
    let mut want_resilient = false;
    if let Some(v) = flags.get("max-retries") {
        policy.max_retries = parse_num(v, "max-retries")?;
        want_resilient = true;
    }
    if let Some(v) = flags.get("call-timeout-ms") {
        let ms: u64 = parse_num(v, "call-timeout-ms")?;
        policy.call_timeout = Some(Duration::from_millis(ms));
        want_resilient = true;
    }
    let want_chaos = ["chaos", "chaos-transient", "chaos-nan", "chaos-panic"]
        .iter()
        .any(|k| flags.contains_key(*k));
    let model: Box<dyn Classifier> = if want_chaos {
        let mut cfg = ChaosConfig::default();
        if let Some(v) = flags.get("chaos-transient") {
            cfg.transient_rate = parse_num(v, "chaos-transient")?;
        }
        if let Some(v) = flags.get("chaos-nan") {
            cfg.nan_rate = parse_num(v, "chaos-nan")?;
        }
        if let Some(v) = flags.get("chaos-panic") {
            cfg.panic_rate = parse_num(v, "chaos-panic")?;
        }
        if let Some(v) = flags.get("chaos-seed") {
            cfg.seed = parse_num(v, "chaos-seed")?;
        }
        let chaos = ChaosClassifier::new(TracedClassifier::new(forest, &obs), cfg);
        Box::new(ResilientClassifier::new(chaos, policy).with_obs(&obs))
    } else if want_resilient {
        Box::new(
            ResilientClassifier::new(TracedClassifier::new(forest, &obs), policy).with_obs(&obs),
        )
    } else {
        Box::new(TracedClassifier::new(forest, &obs))
    };
    let clf = CountingClassifier::new(model);

    let mut config = BatchConfig::default();
    if let Some(t) = flags.get("threads") {
        config.n_threads = Some(parse_num(t, "threads")?);
    }
    println!(
        "priming warm repository over {n} rows ({}) ...",
        explainer.name()
    );
    let (engine, rejection) = WarmEngine::prime_warm_or_cold(
        config,
        explainer,
        ctx,
        clf,
        warm,
        seed,
        &obs,
        warm_from_bytes.as_deref(),
    );
    let engine = Arc::new(engine);
    if let Some(err) = &rejection {
        eprintln!(
            "warm-from snapshot rejected ({}): {err} — cold-starting instead",
            err.kind()
        );
    }
    if warm_from_bytes.is_some() && rejection.is_none() {
        println!(
            "hydrated warm repository from snapshot ({} entries, 0 invocations)",
            engine.store_entries()
        );
    } else {
        println!(
            "primed: {} invocations spent on materialization",
            engine.invocations()
        );
    }

    let addr = serve_config.addr.clone();
    let handle =
        Server::start(engine, serve_config).map_err(|e| format!("cannot bind '{addr}': {e}"))?;
    println!("listening on {}", handle.addr());
    if let Some(port_file) = flags.get("port-file") {
        write_output(port_file, &format!("{}\n", handle.addr().port()), "port")?;
    }
    serve_tail(flags, &obs, &provenance_sink, handle)
}

/// Serves a whole tenant cluster from a JSON manifest: requests route by
/// the protocol's `tenant` field, tenants materialize lazily on first
/// request (hydrating classifier-free from `<snapshot_dir>/<name>.shws`
/// when present), and idle / over-budget tenants are evicted LRU-first
/// with an at-evict snapshot, so re-admission is classifier-free.
/// Datasets, forests, and explain contexts are built eagerly so every
/// misconfiguration fails before the listener binds; only the warm
/// repositories are lazy.
fn cmd_serve_manifest(flags: &HashMap<String, String>) -> Result<ExitCode, String> {
    use shahin::{WarmEngine, WarmExplainer};
    use shahin_serve::Server;
    use shahin_tenancy::{
        EngineFactory, LifecyclePolicy, TenantConfig, TenantManifest, TenantRegistry,
    };
    use std::sync::Arc;
    use std::time::Duration;

    let manifest_path = get(flags, "manifest")?;
    let manifest = TenantManifest::load(std::path::Path::new(manifest_path))?;

    // One registry for the whole cluster: tenancy.* metrics aggregate
    // across tenants, tenant.<name>.* gauges break them down.
    let obs = MetricsRegistry::new();
    let provenance_sink = flags
        .contains_key("provenance-out")
        .then(|| Arc::new(shahin::ProvenanceSink::new()));
    if let Some(sink) = &provenance_sink {
        obs.attach_provenance_sink(Arc::clone(sink));
    }

    let mut configs: Vec<TenantConfig<TracedClassifier<RandomForest>>> = Vec::new();
    for spec in &manifest.tenants {
        let snapshot_path = manifest.snapshot_path(&spec.name);
        // Fail fast on unreadable snapshots, per tenant, before any
        // forest fit and before the listener binds: an explicit
        // warm_from must be readable, and a snapshot that *exists* at
        // the tenant's layout path must be readable too. Absent is fine
        // (the tenant cold-primes); corrupt-but-readable degrades to a
        // cold start at materialization, counted under
        // persist.load_rejected — the file's contents are data, the
        // file's existence is configuration.
        if let Some(p) = &spec.warm_from {
            std::fs::read(p).map_err(|e| {
                format!(
                    "tenant \"{}\": cannot read warm_from snapshot '{p}': {e}",
                    spec.name
                )
            })?;
        }
        if let Some(p) = &snapshot_path {
            if p.exists() {
                std::fs::read(p).map_err(|e| {
                    format!(
                        "tenant \"{}\": snapshot '{}' exists but is unreadable: {e}",
                        spec.name,
                        p.display()
                    )
                })?;
            }
        }

        let file = File::open(&spec.csv).map_err(|e| {
            format!(
                "tenant \"{}\": cannot open csv '{}': {e}",
                spec.name, spec.csv
            )
        })?;
        let csv =
            read_csv(file, Some(&spec.label)).map_err(|e| format!("tenant \"{}\": {e}", spec.name))?;
        let labels = csv.labels.ok_or_else(|| {
            format!(
                "tenant \"{}\": label column '{}' produced no labels",
                spec.name, spec.label
            )
        })?;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let split = train_test_split(&csv.data, &labels, 1.0 / 3.0, &mut rng);
        let forest = RandomForest::fit(
            &split.train,
            &split.train_labels,
            &ForestParams::default(),
            &mut rng,
        );
        let ctx = ExplainContext::fit(&split.train, 1000, &mut rng);
        let n = spec.warm_rows.min(split.test.n_rows());
        let warm = split.test.select(&(0..n).collect::<Vec<_>>());
        let explainer = match spec.explainer.as_str() {
            "anchor" => WarmExplainer::Anchor(AnchorExplainer::default()),
            "shap" => WarmExplainer::Shap(KernelShapExplainer::default()),
            _ => WarmExplainer::Lime(LimeExplainer::default()),
        };
        let batch_config = BatchConfig {
            n_threads: spec.threads,
            ..Default::default()
        };
        println!(
            "tenant \"{}\": {}, {} warm rows{} — cold until first request",
            spec.name,
            spec.explainer,
            n,
            match spec.quota {
                Some(q) => format!(", quota {q}"),
                None => String::new(),
            }
        );
        let seed = spec.seed;
        let factory_obs = obs.clone();
        // The factory re-materializes this tenant on every cold start
        // (including re-admission after eviction): a fresh counting
        // wrapper each time, so an engine's invocation count is its own.
        let factory: EngineFactory<TracedClassifier<RandomForest>> = Box::new(move |bytes| {
            WarmEngine::prime_warm_or_cold(
                batch_config.clone(),
                explainer.clone(),
                ctx.clone(),
                CountingClassifier::new(TracedClassifier::new(forest.clone(), &factory_obs)),
                warm.clone(),
                seed,
                &factory_obs,
                bytes,
            )
        });
        configs.push(TenantConfig {
            name: spec.name.clone(),
            n_rows: n,
            quota: spec.quota,
            snapshot_path,
            warm_from: spec.warm_from.as_ref().map(std::path::PathBuf::from),
            factory,
        });
    }

    if let Some(dir) = &manifest.snapshot_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create snapshot_dir '{}': {e}", dir.display()))?;
    }
    let policy = LifecyclePolicy {
        memory_budget_bytes: manifest.memory_budget_bytes,
        idle_evict: manifest.idle_evict_ms.map(Duration::from_millis),
    };
    let config = build_serve_config(flags, None, manifest.snapshot_dir.is_some())?;
    let cluster = Arc::new(TenantRegistry::new(configs, manifest.default, policy, &obs));
    let addr = config.addr.clone();
    let handle =
        Server::start_cluster(cluster, config).map_err(|e| format!("cannot bind '{addr}': {e}"))?;
    println!(
        "listening on {} ({} tenants, default \"{}\")",
        handle.addr(),
        manifest.tenants.len(),
        manifest.tenants[manifest.default].name
    );
    if let Some(port_file) = flags.get("port-file") {
        write_output(port_file, &format!("{}\n", handle.addr().port()), "port")?;
    }
    serve_tail(flags, &obs, &provenance_sink, handle)
}
