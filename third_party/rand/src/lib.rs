//! Vendored, self-contained subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no network access, so the
//! handful of crates.io dependencies are vendored as minimal in-tree
//! implementations (see `third_party/README.md`). This crate reimplements
//! exactly the surface the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`,
//! * [`rngs::StdRng`] — here xoshiro256++ (not ChaCha12; streams differ
//!   from upstream `rand`, which no test in this repository relies on),
//! * [`seq::SliceRandom`] (`shuffle`, `choose`) and [`seq::index::sample`],
//! * [`distributions::Standard`] / [`distributions::Distribution`].
//!
//! Determinism contract: for a fixed seed, every generator here produces
//! the same stream on every platform and build — the property Shahin's
//! reproducibility tests depend on.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (upstream rand's
    /// scheme) and constructs the generator.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step — used for seed expansion and derived streams.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=5usize);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let p: f64 = (0..n).map(|_| f64::from(rng.gen_bool(0.3))).sum::<f64>() / n as f64;
        assert!((p - 0.3).abs() < 0.02, "p {p}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let idx = crate::seq::index::sample(&mut rng, 100, 30).into_vec();
        assert_eq!(idx.len(), 30);
        let mut dedup = idx.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "duplicate indices");
        assert!(idx.iter().all(|&i| i < 100));
    }
}
