//! Sequence utilities: in-place shuffling and index sampling.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

pub mod index {
    use crate::Rng;

    /// Sampled indices (upstream rand returns u32 or usize variants; only
    /// the `usize` view is used here).
    #[derive(Clone, Debug)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// The indices as a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// True when no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, uniformly and
    /// without replacement, via a partial Fisher–Yates over the index
    /// vector. O(length) memory — fine at this repository's scales.
    pub fn sample<R: Rng>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} of {length} without replacement"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..length);
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}
