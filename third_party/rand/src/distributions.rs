//! The `Standard` distribution and uniform range sampling.

use std::ops::{Range, RangeInclusive};

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" uniform distribution per type: full range for integers,
/// `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled from uniformly (the receiver of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, n)` via Lemire's widening-multiply method. The
/// residual bias (< 2⁻⁶⁴·n) is irrelevant at this repository's scales.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit: $t = Standard.sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let unit: $t = Standard.sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);
