//! Concrete generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
/// Small, fast, passes BigCrush; not cryptographic — which matches how the
/// workspace uses it (synthetic data, perturbation sampling, tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // An all-zero state would be a fixed point; remix defensively.
        if s == [0; 4] {
            let mut sm = 0xDEAD_BEEF_u64;
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
        }
        StdRng { s }
    }
}
