//! Collection strategies (`vec`, `btree_map`).

use crate::{btree_map_strategy, vec_strategy, BTreeMapStrategy, SizeRange, Strategy, VecStrategy};

/// Strategy producing `Vec`s of `element` values with a length drawn from
/// `size` (a `usize`, `Range<usize>`, or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    vec_strategy(element, size)
}

/// Strategy producing `BTreeMap`s with up to `size` entries (duplicate keys
/// collapse, as in upstream proptest's minimum-size-0 behaviour).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    btree_map_strategy(key, value, size)
}
