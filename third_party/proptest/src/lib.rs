//! Vendored, self-contained subset of the `proptest` 1.x API.
//!
//! Implements the surface the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, numeric-range and
//! tuple strategies, [`collection::vec`] / [`collection::btree_map`], the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test RNG stream (seeded from the test name), there is **no
//! shrinking** — a failing case panics with the generated inputs'
//! `Debug` representation — and `.proptest-regressions` files are not
//! consulted.

use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
pub mod prelude;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Derives the deterministic RNG for one test case.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// A generator of values of one type.
pub trait Strategy {
    /// Generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the result (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi_exclusive)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy for vectors (see [`collection::vec`]).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for B-tree maps (see [`collection::btree_map`]).
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut map = BTreeMap::new();
        // Duplicate keys overwrite, so the map may come out smaller than
        // `n` — upstream retries; the tests here don't rely on exact sizes.
        for _ in 0..n {
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

pub(crate) fn vec_strategy<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub(crate) fn btree_map_strategy<K, V>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// Defines property tests. Accepts an optional
/// `#![proptest_config(ProptestConfig::with_cases(n))]` header followed by
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat_param in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_rng(stringify!($name), __case);
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                // Bodies may `return Ok(())` for an early pass, as with
                // upstream proptest; assertion failures panic directly.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__msg) = __outcome {
                    panic!("{}", __msg);
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 0usize..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, y in -2.0f64..2.0, mut z in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            z += 1;
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn collections_have_requested_sizes(
            v in proptest::collection::vec(0u32..4, 5usize),
            w in proptest::collection::vec(0u32..4, 2..6),
            m in proptest::collection::btree_map(0usize..100, 0u32..4, 0..8),
        ) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!((2..6).contains(&w.len()));
            prop_assert!(m.len() < 8);
        }

        #[test]
        fn maps_and_flat_maps_compose(
            v in pair().prop_flat_map(|(n, _)| proptest::collection::vec(0u32..4, n))
                       .prop_map(|v| v.len()),
        ) {
            prop_assert!((1..10).contains(&v));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(
            crate::Strategy::generate(&(0u64..u64::MAX), &mut a),
            crate::Strategy::generate(&(0u64..u64::MAX), &mut b)
        );
    }
}
