//! Vendored, self-contained subset of the `criterion` 0.5 API.
//!
//! Provides the types and macros the workspace's benches compile against
//! (`Criterion`, `Bencher`, `BenchmarkGroup`, `BatchSize`, the
//! `criterion_group!`/`criterion_main!` macros) with a deliberately simple
//! measurement loop: warm up, then run until the measurement-time budget or
//! sample count is exhausted, and print mean time per iteration. No
//! statistics, plots, or baselines — wall-clock medians from
//! `scripts/bench_parallel.sh` are this repository's tracked perf numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, not used, by the vendored
/// measurement loop).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Benchmark driver configuration + runner.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Target number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up budget before timing starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((iters, total)) if iters > 0 => {
                let per = total.as_secs_f64() / iters as f64;
                println!(
                    "bench: {name:<40} {:>12.3} µs/iter ({iters} iters)",
                    per * 1e6
                );
            }
            _ => println!("bench: {name:<40} (no measurement)"),
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (no-op in the vendored runner).
    pub fn finish(self) {}
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: at least one call, until the warm-up budget is spent.
        let w0 = Instant::now();
        while w0.elapsed() < self.warm_up {
            black_box(routine());
            if self.warm_up.is_zero() {
                break;
            }
        }
        let mut iters = 0u64;
        let t0 = Instant::now();
        while iters < self.samples as u64 && t0.elapsed() < self.budget {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters.max(1), t0.elapsed()));
    }

    /// Times `routine` with untimed per-call `setup`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let w0 = Instant::now();
        loop {
            let input = setup();
            black_box(routine(input));
            if w0.elapsed() >= self.warm_up {
                break;
            }
        }
        let mut iters = 0u64;
        let mut timed = Duration::ZERO;
        while iters < self.samples as u64 && timed < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            timed += t.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), timed));
    }
}

/// Declares a benchmark group (both the simple and the configured form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
