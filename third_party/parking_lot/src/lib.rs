//! Vendored, self-contained subset of the `parking_lot` 0.12 API.
//!
//! Thin non-poisoning wrappers over `std::sync` primitives: same method
//! shapes (`lock()` / `read()` / `write()` return guards directly, no
//! `Result`), implemented on the std locks. Performance characteristics are
//! std's, not parking_lot's — adequate for this workspace's contention
//! levels, and trivially correct.

use std::fmt;
use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that hands back the data on poisoning instead
/// of propagating an error (parking_lot semantics).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
